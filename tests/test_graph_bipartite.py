"""Tests of the bipartite graph and the GraphBuilder projections."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.bipartite import (
    BipartiteGraph,
    project_onto_groups,
    project_onto_individuals,
)

from tests.oracles import projection_bruteforce


class TestBipartiteGraph:
    def test_edges_are_idempotent(self):
        g = BipartiteGraph(2, 2)
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        assert g.n_edges == 1

    def test_membership_queries(self):
        g = BipartiteGraph.from_edges(3, 2, [(0, 0), (1, 0), (2, 1)])
        assert g.members_of(0).tolist() == [0, 1]
        assert g.groups_of(2).tolist() == [1]
        assert g.left_degrees().tolist() == [1, 1, 1]
        assert g.right_degrees().tolist() == [2, 1]

    def test_membership_views_are_readonly(self):
        g = BipartiteGraph.from_edges(3, 2, [(0, 0), (1, 0), (2, 1)])
        with pytest.raises(ValueError):
            g.members_of(0)[0] = 5
        with pytest.raises(ValueError):
            g.left_degrees()[0] = 9

    def test_from_arrays_matches_from_edges(self):
        pairs = [(0, 0), (1, 0), (2, 1), (1, 0)]
        a = BipartiteGraph.from_edges(3, 2, pairs)
        b = BipartiteGraph.from_arrays(
            3, 2,
            np.array([p[0] for p in pairs]),
            np.array([p[1] for p in pairs]),
        )
        assert a.n_edges == b.n_edges == 3
        la, ra = a.membership_arrays()
        lb, rb = b.membership_arrays()
        assert la.tolist() == lb.tolist()
        assert ra.tolist() == rb.tolist()

    def test_from_arrays_range_checks(self):
        with pytest.raises(GraphError, match="left node 3"):
            BipartiteGraph.from_arrays(3, 2, np.array([3]), np.array([0]))
        with pytest.raises(GraphError, match="right node -1"):
            BipartiteGraph.from_arrays(3, 2, np.array([0]), np.array([-1]))

    def test_out_of_range_rejected(self):
        g = BipartiteGraph(1, 1)
        with pytest.raises(GraphError):
            g.add_edge(1, 0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1)

    def test_negative_sizes_rejected(self):
        with pytest.raises(GraphError):
            BipartiteGraph(-1, 3)


class TestGroupProjection:
    def test_paper_semantics_shared_directors_weight(self):
        """Two companies sharing two directors -> edge weight 2."""
        g = BipartiteGraph.from_edges(
            3, 2, [(0, 0), (0, 1), (1, 0), (1, 1), (2, 1)]
        )
        result = project_onto_groups(g)
        assert result.graph.weight(0, 1) == 2.0
        assert result.isolated == []

    def test_isolated_groups_reported(self):
        g = BipartiteGraph.from_edges(2, 3, [(0, 0), (0, 1)])
        result = project_onto_groups(g)
        assert result.isolated == [2]

    def test_min_shared_threshold(self):
        g = BipartiteGraph.from_edges(
            3, 2, [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)]
        )
        result = project_onto_groups(g, min_shared=2)
        assert result.graph.weight(0, 1) == 2.0
        weak = project_onto_groups(g, min_shared=3)
        assert weak.graph.n_edges == 0

    def test_hub_guard_skips_big_directors(self):
        # Director 0 sits everywhere; with the guard the projection is empty.
        g = BipartiteGraph.from_edges(1, 4, [(0, k) for k in range(4)])
        result = project_onto_groups(g, max_left_degree=3)
        assert result.graph.n_edges == 0
        assert result.skipped_hubs == [0]

    def test_invalid_min_shared(self):
        g = BipartiteGraph(1, 1)
        with pytest.raises(GraphError):
            project_onto_groups(g, min_shared=0)


class TestIndividualProjection:
    def test_directors_sharing_a_board_connected(self):
        g = BipartiteGraph.from_edges(3, 2, [(0, 0), (1, 0), (2, 1)])
        result = project_onto_individuals(g)
        assert result.graph.has_edge(0, 1)
        assert not result.graph.has_edge(0, 2)
        assert result.isolated == [2]

    def test_weight_counts_shared_boards(self):
        g = BipartiteGraph.from_edges(2, 3, [(0, 0), (1, 0), (0, 1), (1, 1),
                                             (0, 2)])
        result = project_onto_individuals(g)
        assert result.graph.weight(0, 1) == 2.0

    def test_hub_guard_on_groups(self):
        g = BipartiteGraph.from_edges(4, 1, [(k, 0) for k in range(4)])
        result = project_onto_individuals(g, max_right_degree=3)
        assert result.graph.n_edges == 0
        assert result.skipped_hubs == [0]


@given(
    st.integers(1, 12),
    st.integers(1, 8),
    st.lists(st.tuples(st.integers(0, 11), st.integers(0, 7)), max_size=60),
)
@settings(max_examples=60, deadline=None)
def test_projection_matches_bruteforce(n_left, n_right, raw_edges):
    edges = [(l % n_left, r % n_right) for l, r in raw_edges]
    g = BipartiteGraph.from_edges(n_left, n_right, edges)
    result = project_onto_groups(g)
    expected = projection_bruteforce(n_left, n_right, edges)
    actual = {
        (u, v): int(w) for u, v, w in result.graph.edges()
    }
    assert actual == expected


@given(
    st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=50)
)
@settings(max_examples=40, deadline=None)
def test_projection_symmetry(raw_edges):
    """Projecting onto individuals of the transposed graph equals
    projecting onto groups of the original."""
    g = BipartiteGraph.from_edges(10, 10, raw_edges)
    transposed = BipartiteGraph.from_edges(
        10, 10, [(r, l) for l, r in raw_edges]
    )
    onto_groups = project_onto_groups(g)
    onto_left = project_onto_individuals(transposed)
    a = sorted((u, v, w) for u, v, w in onto_groups.graph.edges())
    b = sorted((u, v, w) for u, v, w in onto_left.graph.edges())
    assert a == b
