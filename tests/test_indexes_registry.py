"""Tests of the index registry."""

from __future__ import annotations

import pytest

from repro.errors import SegregationIndexError
from repro.indexes.base import (
    DEFAULT_INDEXES,
    IndexSpec,
    all_index_names,
    get_index,
    register,
    resolve_indexes,
)
from repro.indexes.counts import UnitCounts


class TestRegistry:
    def test_six_default_indexes(self):
        assert [spec.name for spec in DEFAULT_INDEXES] == [
            "D", "G", "H", "Iso", "Int", "A",
        ]

    def test_lookup_is_case_insensitive(self):
        assert get_index("d").name == "D"
        assert get_index("ISO").name == "Iso"

    def test_unknown_name_raises(self):
        with pytest.raises(SegregationIndexError, match="unknown index"):
            get_index("nope")

    def test_resolve_none_gives_defaults(self):
        assert resolve_indexes(None) == list(DEFAULT_INDEXES)

    def test_resolve_names(self):
        specs = resolve_indexes(["D", "H"])
        assert [s.name for s in specs] == ["D", "H"]

    def test_all_names_cover_defaults(self):
        names = all_index_names()
        for spec in DEFAULT_INDEXES:
            assert spec.name in names

    def test_duplicate_registration_rejected(self):
        spec = IndexSpec("D", "dup", lambda c: 0.0, (0, 1), True)
        with pytest.raises(SegregationIndexError, match="already registered"):
            register(spec)

    def test_custom_index_registration(self):
        spec = IndexSpec(
            "TestOnly", "custom", lambda c: 0.5, (0.0, 1.0), True
        )
        try:
            register(spec)
            assert get_index("testonly").compute(
                UnitCounts([10], [5])
            ) == pytest.approx(0.5)
        finally:
            # Keep the global registry clean for other tests.
            from repro.indexes import base

            base._REGISTRY.pop("TESTONLY", None)

    def test_compute_delegates(self, two_unit_counts):
        assert get_index("D").compute(two_unit_counts) == pytest.approx(0.6)

    def test_bounds_metadata(self):
        for spec in DEFAULT_INDEXES:
            assert spec.bounds == (0.0, 1.0)

    def test_interaction_direction_flag(self):
        assert get_index("Int").higher_is_more_segregated is False
        assert get_index("D").higher_is_more_segregated is True
