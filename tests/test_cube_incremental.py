"""Tests of the incremental temporal fill engine.

The contract under test: for every date in a timeline, the cube an
incremental update produces is **bit-exact** (``check_same_cells`` at
``atol=0``) with a from-scratch columnar build on the same restricted
database — while actually recomputing only the contexts whose covers
changed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.cube.incremental import TemporalCubeEngine
from repro.data.synthetic import random_final_table, random_temporal_final_table
from repro.errors import CubeError, MiningError
from repro.etl.diff import valid_at
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.itemsets.transactions import encode_table

LIMITS = {"min_population": 20, "min_minority": 5,
          "max_sa_items": 2, "max_ca_items": 2}


def _engine(db, **overrides):
    params = dict(LIMITS)
    params.update(overrides)
    return TemporalCubeEngine(
        db, SegregationDataCubeBuilder(engine="incremental", **params)
    )


def _scratch(db, valid, **overrides):
    params = dict(LIMITS)
    params.update(overrides)
    return SegregationDataCubeBuilder(**params).build_from_transactions(
        db.restrict(valid)
    )


@pytest.fixture(scope="module")
def temporal():
    table, schema, starts, ends = random_temporal_final_table(
        n_rows=3000, n_units=12, dates=(0, 1, 2),
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 4, "s": 3},
        multi_valued_ca={"mv": 3},
        seed=5, skew=0.5, max_churn=0.05,
    )
    db = encode_table(table, schema)
    valids = {d: valid_at(starts, ends, d) for d in (0, 1, 2)}
    return db, valids


class TestRestrictedDatabase:
    def test_restrict_masks_covers_and_full_cover(self, temporal):
        db, valids = temporal
        restricted = db.restrict(valids[1])
        assert len(restricted) == len(db)
        assert restricted.n_active == int(valids[1].sum())
        assert restricted.full_cover().support() == restricted.n_active
        inactive = np.flatnonzero(~valids[1])
        for item_id in range(min(5, db.n_items)):
            rows = set(restricted.covers()[item_id].to_indices().tolist())
            assert rows.isdisjoint(inactive.tolist())

    def test_restrict_matches_filtered_table(self):
        table, schema = random_final_table(
            400, 6, sa_attributes={"g": 2}, ca_attributes={"r": 3}, seed=3
        )
        db = encode_table(table, schema)
        rng = np.random.default_rng(0)
        valid = rng.random(400) < 0.7
        restricted = db.restrict(valid)
        # Same dictionary, so supports must match the re-encoded subset.
        subset_db = encode_table(table.filter(valid), schema)
        for item_id in range(db.n_items):
            item = db.dictionary.item(item_id)
            want = (
                subset_db.covers()[subset_db.dictionary.id_of(item)].support()
                if item in subset_db.dictionary else 0
            )
            assert restricted.covers()[item_id].support() == want

    def test_restricted_rows_view_is_rejected(self, temporal):
        db, valids = temporal
        restricted = db.restrict(valids[0])
        with pytest.raises(MiningError, match="restricted"):
            restricted.rows

    def test_restrict_length_mismatch_rejected(self, temporal):
        db, _ = temporal
        with pytest.raises(MiningError, match="does not match"):
            db.restrict(np.ones(3, dtype=bool))

    def test_item_supports_respect_restriction(self, temporal):
        db, valids = temporal
        restricted = db.restrict(valids[1])
        supports = restricted.item_supports()
        for item_id in range(db.n_items):
            assert supports[item_id] == restricted.covers()[item_id].support()

    def test_chained_restrictions_compose(self, temporal):
        db, valids = temporal
        rng = np.random.default_rng(7)
        other = rng.random(len(db)) < 0.6
        chained = db.restrict(valids[1]).restrict(other)
        direct = db.restrict(valids[1] & other)
        assert chained.n_active == direct.n_active
        assert chained.full_cover() == direct.full_cover()
        for item_id in range(db.n_items):
            assert chained.covers()[item_id] == direct.covers()[item_id]


class TestIncrementalParity:
    def test_bit_exact_parity_across_dates(self, temporal):
        db, valids = temporal
        engine = _engine(db)
        states = engine.run([(d, valids[d]) for d in (0, 1, 2)])
        for state in states:
            scratch = _scratch(db, valids[state.date])
            assert check_same_cells(state.cube, scratch, atol=0.0) == []

    def test_some_contexts_are_carried(self, temporal):
        db, valids = temporal
        engine = _engine(db)
        states = engine.run([(d, valids[d]) for d in (0, 1, 2)])
        for state in states[1:]:
            extra = state.cube.metadata.extra
            assert extra["engine"] == "incremental"
            assert extra["n_changed_rows"] > 0
            assert extra["n_carried_contexts"] > extra["n_recomputed_contexts"]

    def test_cell_accounting_adds_up(self, temporal):
        db, valids = temporal
        engine = _engine(db)
        s0 = engine.build_at(valids[0], 0)
        s1 = engine.update(s0, valids[1], 1)
        extra = s1.cube.metadata.extra
        assert extra["n_carried_cells"] \
            + extra["n_carried_cells_within_affected"] \
            + extra["n_recomputed_cells"] == len(s1.cube)
        assert extra["n_carried_contexts"] + extra["n_recomputed_contexts"] \
            == extra["n_contexts"] == len(s1.contexts)

    def test_carried_cells_are_bitwise_identical_to_previous(self, temporal):
        db, valids = temporal
        engine = _engine(db)
        s0 = engine.build_at(valids[0], 0)
        s1 = engine.update(s0, valids[1], 1)
        prev, new = s0.cube.table, s1.cube.table
        # Carried rows — whole-context carries and per-cell carries
        # inside recomputed contexts alike — sit first in the merged
        # table, in previous row order.
        extra = s1.cube.metadata.extra
        n_carried = extra["n_carried_cells"] \
            + extra["n_carried_cells_within_affected"]
        assert n_carried > 0
        for j in range(n_carried):
            key = new.keys[j]
            i = prev.row_of(key)
            assert i is not None
            assert int(prev.population[i]) == int(new.population[j])
            assert int(prev.minority[i]) == int(new.minority[j])
            for name, column in prev.columns.items():
                a = np.asarray([column[i]]).view(np.uint64)[0]
                b = np.asarray([new.columns[name][j]]).view(np.uint64)[0]
                assert a == b, (key, name)

    def test_no_change_reuses_cells_with_fresh_provenance(self, temporal):
        db, valids = temporal
        engine = _engine(db)
        s0 = engine.build_at(valids[0], 0)
        again = engine.update(s0, valids[0], 99)
        assert again.cube.table is s0.cube.table   # zero copying
        assert again.date == 99
        extra = again.cube.metadata.extra
        assert extra["n_changed_rows"] == 0
        assert extra["n_recomputed_contexts"] == 0
        assert extra["n_carried_cells"] == len(s0.cube)
        assert extra["n_carried_cells_within_affected"] == 0
        # Consumers of the incremental keys (example, selfcheck) must
        # never KeyError on a static period.
        for key in ("n_carried_contexts", "n_recomputed_cells",
                    "n_contexts"):
            assert key in extra

    def test_resolver_still_answers_point_queries(self, temporal):
        db, valids = temporal
        engine = _engine(db)
        s0 = engine.build_at(valids[0], 0)
        s1 = engine.update(s0, valids[1], 1)
        scratch = _scratch(db, valids[1])
        # A below-threshold or unmaterialised query answers identically.
        for key in list(scratch.keys())[:5]:
            live = s1.cube.cell_by_key(key)
            ref = scratch.cell_by_key(key)
            assert live.population == ref.population
            assert live.minority == ref.minority

    def test_randomized_unlocalized_churn_parity(self):
        # Even with churn spread over arbitrary rows (worst case: most
        # contexts affected), the engine must stay bit-exact.
        table, schema = random_final_table(
            1500, 8, sa_attributes={"g": 2, "a": 3},
            ca_attributes={"r": 3, "s": 3}, seed=17, skew=0.3,
        )
        db = encode_table(table, schema)
        rng = np.random.default_rng(11)
        valid = np.ones(1500, dtype=bool)
        engine = _engine(db, min_population=15, min_minority=4)
        state = engine.build_at(valid, 0)
        for step in range(1, 4):
            flips = rng.choice(1500, size=60, replace=False)
            valid = valid.copy()
            valid[flips] = ~valid[flips]
            state = engine.update(state, valid, step)
            scratch = _scratch(
                db, valid, min_population=15, min_minority=4
            )
            assert check_same_cells(state.cube, scratch, atol=0.0) == []


def _closed_engine(db, **overrides):
    params = dict(LIMITS)
    params.update(overrides)
    return TemporalCubeEngine(
        db, SegregationDataCubeBuilder(engine="incremental", mode="closed",
                                       **params)
    )


def _closed_scratch(db, valid, **overrides):
    params = dict(LIMITS)
    params.update(overrides)
    return SegregationDataCubeBuilder(
        mode="closed", **params
    ).build_from_transactions(db.restrict(valid))


class TestClosedModeIncremental:
    """Closed-mode updates must match from-scratch closed builds, bit-exact.

    The closure diff only re-derives closedness for itemsets whose
    ``cover_digest`` changed; everything else reuses the previous flag —
    and the result must still be indistinguishable from
    ``filter_closed`` run from scratch at every date.
    """

    def test_bit_exact_parity_across_dates(self, temporal):
        db, valids = temporal
        engine = _closed_engine(db)
        states = engine.run([(d, valids[d]) for d in (0, 1, 2)])
        for state in states:
            scratch = _closed_scratch(db, valids[state.date])
            assert check_same_cells(state.cube, scratch, atol=0.0) == []

    def test_closed_cube_is_no_larger_than_all_mode(self, temporal):
        db, valids = temporal
        all_states = _engine(db).run([(d, valids[d]) for d in (0, 1, 2)])
        closed_states = _closed_engine(db).run(
            [(d, valids[d]) for d in (0, 1, 2)]
        )
        for sa, sc in zip(all_states, closed_states):
            assert sc.cube.metadata.mode == "closed"
            assert len(sc.cube) <= len(sa.cube)

    def test_contexts_are_still_carried_in_closed_mode(self, temporal):
        db, valids = temporal
        engine = _closed_engine(db)
        states = engine.run([(d, valids[d]) for d in (0, 1, 2)])
        for state in states[1:]:
            extra = state.cube.metadata.extra
            assert extra["n_carried_contexts"] > 0
            assert extra["n_carried_cells"] > 0

    def test_zero_churn_closed_update_returns_previous_cells(self, temporal):
        # Regression: a static period in closed mode must return the
        # previous cells verbatim under all-carried provenance, not
        # re-derive (or worse, drop) closure flags.
        db, valids = temporal
        engine = _closed_engine(db)
        s0 = engine.build_at(valids[0], 0)
        again = engine.update(s0, valids[0], 7)
        assert again.cube.table is s0.cube.table
        extra = again.cube.metadata.extra
        assert extra["n_changed_rows"] == 0
        assert extra["n_carried_cells"] == len(s0.cube)
        assert extra["n_recomputed_cells"] == 0
        assert extra["n_carried_cells_within_affected"] == 0
        assert again.closed_info is not None
        assert check_same_cells(
            again.cube, _closed_scratch(db, valids[0]), atol=0.0
        ) == []

    def test_randomized_churn_parity_closed(self):
        table, schema = random_final_table(
            1500, 8, sa_attributes={"g": 2, "a": 3},
            ca_attributes={"r": 3, "s": 3}, seed=23, skew=0.3,
        )
        db = encode_table(table, schema)
        rng = np.random.default_rng(29)
        valid = np.ones(1500, dtype=bool)
        engine = _closed_engine(db, min_population=15, min_minority=4)
        state = engine.build_at(valid, 0)
        for step in range(1, 4):
            flips = rng.choice(1500, size=60, replace=False)
            valid = valid.copy()
            valid[flips] = ~valid[flips]
            state = engine.update(state, valid, step)
            scratch = _closed_scratch(
                db, valid, min_population=15, min_minority=4
            )
            assert check_same_cells(state.cube, scratch, atol=0.0) == []


class TestCellLevelCarry:
    """Per-cell carry inside recomputed contexts.

    A swap of one row for an attribute-identical row in the same unit
    changes the context's cover (so the context is recomputed) but not
    its unit-count vector — every cell whose segregation items were not
    touched by the churn must then be carried verbatim, not re-evaluated.
    """

    def _swap_db(self):
        # r=a: units 0/1, a fixed F/M mixture, plus one *spare* M row
        # (attribute-identical to row 11) that is invalid at date 0.
        rows = []
        for i in range(12):
            rows.append(("F" if i % 3 == 0 else "M", "a", i % 2))
        rows += [("F" if i % 2 else "M", "b", i % 2) for i in range(12)]
        rows.append(("M", "a", 11 % 2))   # spare; mirrors row 11
        table = Table.from_rows(["g", "r", "unitID"], rows)
        schema = Schema.build(
            segregation=["g"], context=["r"], unit="unitID"
        )
        return encode_table(table, schema)

    def _run_swap(self, mode):
        db = self._swap_db()
        builder = SegregationDataCubeBuilder(
            engine="incremental", mode=mode, min_population=10,
            min_minority=2, max_sa_items=1, max_ca_items=1,
        )
        engine = TemporalCubeEngine(db, builder)
        valid0 = np.ones(25, dtype=bool)
        valid0[24] = False                  # spare row out
        valid1 = np.ones(25, dtype=bool)
        valid1[11] = False                  # swap: row 11 out, spare in
        s0 = engine.build_at(valid0, 0)
        s1 = engine.update(s0, valid1, 1)
        scratch = SegregationDataCubeBuilder(
            mode=mode, min_population=10, min_minority=2,
            max_sa_items=1, max_ca_items=1,
        ).build_from_transactions(db.restrict(valid1))
        return s1, scratch

    @pytest.mark.parametrize("mode", ["all", "closed"])
    def test_untouched_cells_in_affected_context_are_carried(self, mode):
        s1, scratch = self._run_swap(mode)
        extra = s1.cube.metadata.extra
        # The swap touches items (g=M, r=a): context {r=a} recomputes,
        # but its tvec is unchanged, so the g=F cell carries.
        assert extra["n_recomputed_contexts"] >= 1
        assert extra["n_carried_cells_within_affected"] >= 1
        assert check_same_cells(s1.cube, scratch, atol=0.0) == []

    @pytest.mark.parametrize("mode", ["all", "closed"])
    def test_carry_and_recompute_partition_the_cube(self, mode):
        s1, _ = self._run_swap(mode)
        extra = s1.cube.metadata.extra
        assert extra["n_carried_cells"] \
            + extra["n_carried_cells_within_affected"] \
            + extra["n_recomputed_cells"] == len(s1.cube)


class TestContextTransitions:
    """Contexts must appear/disappear exactly as a scratch build says."""

    def _db(self, rows):
        table = Table.from_rows(["g", "r", "unitID"], rows)
        schema = Schema.build(
            segregation=["g"], context=["r"], unit="unitID"
        )
        return encode_table(table, schema)

    def test_context_drops_below_threshold(self):
        # 12 rows of r=a; threshold 10; removing 3 kills the context.
        rows = [("F" if i % 3 == 0 else "M", "a", i % 2) for i in range(12)]
        rows += [("F" if i % 2 else "M", "b", i % 2) for i in range(12)]
        db = self._db(rows)
        engine = _engine(db, min_population=10, min_minority=2,
                         max_sa_items=1, max_ca_items=1)
        valid0 = np.ones(24, dtype=bool)
        valid1 = valid0.copy()
        valid1[[0, 3, 6]] = False
        s0 = engine.build_at(valid0, 0)
        s1 = engine.update(s0, valid1, 1)
        contexts0 = {frozenset(db.dictionary.item(i) for i in c)
                     for c in s0.contexts}
        contexts1 = {frozenset(db.dictionary.item(i) for i in c)
                     for c in s1.contexts}
        from repro.itemsets.items import Item
        assert frozenset({Item("r", "a")}) in contexts0
        assert frozenset({Item("r", "a")}) not in contexts1
        scratch = _scratch(db, valid1, min_population=10, min_minority=2,
                           max_sa_items=1, max_ca_items=1)
        assert check_same_cells(s1.cube, scratch, atol=0.0) == []

    def test_context_becomes_frequent(self):
        # r=a starts at 8 rows (< 10), gains 3 joiners -> frequent.
        rows = [("F" if i % 3 == 0 else "M", "a", i % 2) for i in range(11)]
        rows += [("F" if i % 2 else "M", "b", i % 2) for i in range(12)]
        db = self._db(rows)
        engine = _engine(db, min_population=10, min_minority=2,
                         max_sa_items=1, max_ca_items=1)
        valid0 = np.ones(23, dtype=bool)
        valid0[[0, 1, 2]] = False          # only 8 r=a rows at date 0
        valid1 = np.ones(23, dtype=bool)   # all 11 at date 1
        s0 = engine.build_at(valid0, 0)
        s1 = engine.update(s0, valid1, 1)
        from repro.itemsets.items import Item
        decoded1 = {frozenset(db.dictionary.item(i) for i in c)
                    for c in s1.contexts}
        assert frozenset({Item("r", "a")}) in decoded1
        scratch = _scratch(db, valid1, min_population=10, min_minority=2,
                           max_sa_items=1, max_ca_items=1)
        assert check_same_cells(s1.cube, scratch, atol=0.0) == []


class TestEngineGuards:
    def test_requires_incremental_engine(self, temporal):
        db, _ = temporal
        with pytest.raises(CubeError, match="engine='incremental'"):
            TemporalCubeEngine(db, SegregationDataCubeBuilder())

    def test_accepts_closed_mode(self, temporal):
        db, _ = temporal
        engine = TemporalCubeEngine(
            db,
            SegregationDataCubeBuilder(engine="incremental",
                                       mode="closed", **LIMITS),
        )
        assert engine.builder.mode == "closed"

    def test_requires_unit_labels(self):
        table = Table.from_dict({"g": ["F", "M"], "r": ["a", "b"]})
        schema = Schema.build(segregation=["g"], context=["r"])
        db = encode_table(table, schema)
        with pytest.raises(CubeError, match="unit-labelled"):
            TemporalCubeEngine(db)

    def test_fractional_threshold_falls_back_to_full_build(self):
        table, schema = random_final_table(
            600, 6, sa_attributes={"g": 2}, ca_attributes={"r": 3}, seed=2
        )
        db = encode_table(table, schema)
        engine = _engine(db, min_population=0.05, min_minority=4)
        valid0 = np.ones(600, dtype=bool)
        valid1 = valid0.copy()
        valid1[:80] = False   # n_active shrinks -> threshold re-resolves
        s0 = engine.build_at(valid0, 0)
        s1 = engine.update(s0, valid1, 1)
        assert s1.cube.metadata.extra.get("engine") == "incremental"
        assert "n_carried_contexts" not in s1.cube.metadata.extra
        scratch = _scratch(db, valid1, min_population=0.05, min_minority=4)
        assert check_same_cells(s1.cube, scratch, atol=0.0) == []

    def test_plain_builder_accepts_incremental_engine(self):
        table, schema = random_final_table(
            400, 6, sa_attributes={"g": 2}, ca_attributes={"r": 3}, seed=1
        )
        incremental = SegregationDataCubeBuilder(
            engine="incremental", min_population=15, min_minority=4
        ).build(table, schema)
        columnar = SegregationDataCubeBuilder(
            min_population=15, min_minority=4
        ).build(table, schema)
        assert check_same_cells(incremental, columnar, atol=0.0) == []

    def test_unknown_engine_rejected(self):
        with pytest.raises(CubeError, match="engine must be"):
            SegregationDataCubeBuilder(engine="nope")
