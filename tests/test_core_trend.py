"""Tests of the temporal trend API."""

from __future__ import annotations

import math

import pytest

from repro.core.trend import (
    TrendPoint,
    segregation_trend,
    snapshot_seats_table,
    temporal_seats_table,
    trend_rows,
)
from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.incremental import TemporalCubeEngine
from repro.data.estonia import EstoniaConfig, generate_estonia
from repro.errors import ReproError
from repro.etl.builder import tabular_final_table
from repro.etl.diff import OPEN_END, OPEN_START, valid_at
from repro.itemsets.transactions import encode_table
from repro.store import CubeTimeline, dump_into_timeline


@pytest.fixture(scope="module")
def estonia():
    return generate_estonia(EstoniaConfig(n_companies=800, seed=4))


class TestSnapshotSeatsTable:
    def test_joins_both_entities(self, estonia):
        table, schema = snapshot_seats_table(estonia, 2005)
        assert len(table) == len(estonia.membership.snapshot(2005))
        assert set(schema.sa_names) == {"gender", "age", "birthplace"}
        assert set(schema.ca_names) == {"sector", "county"}
        schema.validate(table)

    def test_untimed_snapshot_covers_all(self, italy_small):
        table, _ = snapshot_seats_table(italy_small, None)
        assert len(table) == len(italy_small.membership)

    def test_empty_date_rejected(self, estonia):
        with pytest.raises(ReproError, match="no membership"):
            snapshot_seats_table(estonia, 1700)

    def test_seat_rows_join_correct_attributes(self, estonia):
        pairs = estonia.membership.snapshot(2005)
        table, _ = snapshot_seats_table(estonia, 2005)
        genders = estonia.individuals.categorical("gender")
        sectors = estonia.groups.categorical("sector")
        for k in (0, len(pairs) // 2, len(pairs) - 1):
            director, company = pairs[k]
            row = table.row(k)
            assert row["gender"] == genders[director]
            assert row["sector"] == sectors[company]


class TestSegregationTrend:
    def test_series_shape(self, estonia):
        points = segregation_trend(
            estonia, range(2000, 2010, 3), "sector", {"gender": "F"},
            indexes=["D", "Iso"],
        )
        assert len(points) == 4
        for point in points:
            assert set(point.values) == {"D", "Iso"}
            assert 0 <= point.value("D") <= 1
            assert point.minority <= point.population

    def test_dates_without_membership_skipped(self, estonia):
        points = segregation_trend(
            estonia, [1700, 2005], "sector", {"gender": "F"}
        )
        assert [p.date for p in points] == [2005]

    def test_conjunctive_subgroup(self, estonia):
        broad = segregation_trend(estonia, [2005], "sector",
                                  {"gender": "F"})
        narrow = segregation_trend(
            estonia, [2005], "sector", {"gender": "F", "age": "39-46"}
        )
        assert narrow[0].minority < broad[0].minority

    def test_unit_attr_from_groups(self, estonia):
        points = segregation_trend(estonia, [2005], "county",
                                   {"gender": "F"})
        assert points[0].n_units <= 15

    def test_trend_rows_rendering(self, estonia):
        points = segregation_trend(estonia, [2003, 2006], "sector",
                                   {"gender": "F"}, indexes=["D"])
        rows = trend_rows(points)
        assert len(rows) == 2
        assert rows[0][0] == 2003
        assert len(rows[0]) == 5         # date, T, M, P, D

    def test_trend_rows_empty(self):
        assert trend_rows([]) == []

    def test_planted_drift_visible(self):
        dataset = generate_estonia(EstoniaConfig(n_companies=3000, seed=9))
        points = segregation_trend(
            dataset, [1998, 2013], "sector", {"gender": "F"}, indexes=["D"]
        )
        assert points[1].proportion > points[0].proportion


class TestTrendPoint:
    def test_value_accessor(self):
        point = TrendPoint(2000, 10, 3, 0.3, 2, {"D": 0.5})
        assert point.value("D") == 0.5
        assert math.isnan(point.value("G"))


class TestTemporalSeatsTable:
    def test_one_row_per_edge_with_bounds(self, estonia):
        table, schema, starts, ends = temporal_seats_table(estonia)
        assert len(table) == len(estonia.membership)
        assert len(starts) == len(ends) == len(table)
        assert set(schema.sa_names) == {"gender", "age", "birthplace"}
        assert set(schema.ca_names) == {"sector", "county"}

    def test_masks_reproduce_snapshots(self, estonia):
        table, _, starts, ends = temporal_seats_table(estonia)
        for year in (2000, 2008):
            mask = valid_at(starts, ends, year)
            assert int(mask.sum()) == len(estonia.membership.snapshot(year))

    def test_open_bounds_encoded_as_sentinels(self):
        from repro.data.italy import generate_italy, ItalyConfig

        italy = generate_italy(ItalyConfig(n_companies=50, seed=1))
        _, _, starts, ends = temporal_seats_table(italy)
        # Untimed memberships are valid forever.
        assert (starts == OPEN_START).all()
        assert (ends == OPEN_END).all()


class TestTimelineTrendParity:
    """The cube path must reproduce the recompute path exactly."""

    @pytest.fixture(scope="class")
    def trend_setup(self, tmp_path_factory):
        dataset = generate_estonia(EstoniaConfig(n_companies=400, seed=4))
        years = [2001, 2005, 2009]
        seats, schema, starts, ends = temporal_seats_table(dataset)
        final, final_schema = tabular_final_table(seats, schema, "sector")
        db = encode_table(final, final_schema)
        engine = TemporalCubeEngine(
            db,
            SegregationDataCubeBuilder(
                engine="incremental", min_population=5, min_minority=2
            ),
        )
        states = engine.run(
            [(year, valid_at(starts, ends, year)) for year in years]
        )
        root = tmp_path_factory.mktemp("trend") / "timeline"
        previous = None
        for state in states:
            dump_into_timeline(
                root, state.date, state.cube,
                parent_date=None if previous is None else previous.date,
                parent=None if previous is None else previous.cube,
            )
            previous = state
        return dataset, years, CubeTimeline(root)

    def test_cube_path_matches_recompute_path(self, trend_setup):
        dataset, years, timeline = trend_setup
        recomputed = segregation_trend(
            dataset, years, "sector", {"gender": "F"}
        )
        from_cubes = segregation_trend(
            timeline, years, "sector", {"gender": "F"}
        )
        assert [p.date for p in from_cubes] == [p.date for p in recomputed]
        for a, b in zip(recomputed, from_cubes):
            assert a.population == b.population
            assert a.minority == b.minority
            assert a.n_units == b.n_units
            assert a.proportion == pytest.approx(b.proportion)
            assert set(a.values) == set(b.values)
            for name, value in a.values.items():
                assert value == b.values[name], (a.date, name)

    def test_missing_dates_skipped(self, trend_setup):
        _, years, timeline = trend_setup
        points = segregation_trend(
            timeline, [1700] + years, "sector", {"gender": "F"}
        )
        assert [p.date for p in points] == years

    def test_conjunctive_subgroup_reads_deeper_cell(self, trend_setup):
        _, years, timeline = trend_setup
        broad = segregation_trend(timeline, years, "sector", {"gender": "F"})
        narrow = segregation_trend(
            timeline, years, "sector", {"gender": "F", "age": "39-46"}
        )
        assert narrow and narrow[0].minority < broad[0].minority

    def test_index_subset_respected(self, trend_setup):
        _, years, timeline = trend_setup
        points = segregation_trend(
            timeline, years, "sector", {"gender": "F"}, indexes=["D", "Iso"]
        )
        assert set(points[0].values) == {"D", "Iso"}
