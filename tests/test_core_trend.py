"""Tests of the temporal trend API."""

from __future__ import annotations

import pytest

from repro.core.trend import (
    TrendPoint,
    segregation_trend,
    snapshot_seats_table,
    trend_rows,
)
from repro.data.estonia import EstoniaConfig, generate_estonia
from repro.errors import ReproError


@pytest.fixture(scope="module")
def estonia():
    return generate_estonia(EstoniaConfig(n_companies=800, seed=4))


class TestSnapshotSeatsTable:
    def test_joins_both_entities(self, estonia):
        table, schema = snapshot_seats_table(estonia, 2005)
        assert len(table) == len(estonia.membership.snapshot(2005))
        assert set(schema.sa_names) == {"gender", "age", "birthplace"}
        assert set(schema.ca_names) == {"sector", "county"}
        schema.validate(table)

    def test_untimed_snapshot_covers_all(self, italy_small):
        table, _ = snapshot_seats_table(italy_small, None)
        assert len(table) == len(italy_small.membership)

    def test_empty_date_rejected(self, estonia):
        with pytest.raises(ReproError, match="no membership"):
            snapshot_seats_table(estonia, 1700)

    def test_seat_rows_join_correct_attributes(self, estonia):
        pairs = estonia.membership.snapshot(2005)
        table, _ = snapshot_seats_table(estonia, 2005)
        genders = estonia.individuals.categorical("gender")
        sectors = estonia.groups.categorical("sector")
        for k in (0, len(pairs) // 2, len(pairs) - 1):
            director, company = pairs[k]
            row = table.row(k)
            assert row["gender"] == genders[director]
            assert row["sector"] == sectors[company]


class TestSegregationTrend:
    def test_series_shape(self, estonia):
        points = segregation_trend(
            estonia, range(2000, 2010, 3), "sector", {"gender": "F"},
            indexes=["D", "Iso"],
        )
        assert len(points) == 4
        for point in points:
            assert set(point.values) == {"D", "Iso"}
            assert 0 <= point.value("D") <= 1
            assert point.minority <= point.population

    def test_dates_without_membership_skipped(self, estonia):
        points = segregation_trend(
            estonia, [1700, 2005], "sector", {"gender": "F"}
        )
        assert [p.date for p in points] == [2005]

    def test_conjunctive_subgroup(self, estonia):
        broad = segregation_trend(estonia, [2005], "sector",
                                  {"gender": "F"})
        narrow = segregation_trend(
            estonia, [2005], "sector", {"gender": "F", "age": "39-46"}
        )
        assert narrow[0].minority < broad[0].minority

    def test_unit_attr_from_groups(self, estonia):
        points = segregation_trend(estonia, [2005], "county",
                                   {"gender": "F"})
        assert points[0].n_units <= 15

    def test_trend_rows_rendering(self, estonia):
        points = segregation_trend(estonia, [2003, 2006], "sector",
                                   {"gender": "F"}, indexes=["D"])
        rows = trend_rows(points)
        assert len(rows) == 2
        assert rows[0][0] == 2003
        assert len(rows[0]) == 5         # date, T, M, P, D

    def test_trend_rows_empty(self):
        assert trend_rows([]) == []

    def test_planted_drift_visible(self):
        dataset = generate_estonia(EstoniaConfig(n_companies=3000, seed=9))
        points = segregation_trend(
            dataset, [1998, 2013], "sector", {"gender": "F"}, indexes=["D"]
        )
        assert points[1].proportion > points[0].proportion


class TestTrendPoint:
    def test_value_accessor(self):
        point = TrendPoint(2000, 10, 3, 0.3, 2, {"D": 0.5})
        assert point.value("D") == 0.5
        import math

        assert math.isnan(point.value("G"))
