"""Hand-computed and definitional tests for the six binary indexes."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.indexes.binary import (
    atkinson,
    dissimilarity,
    gini,
    information,
    interaction,
    isolation,
)
from repro.indexes.counts import UnitCounts

from tests.oracles import dissimilarity_naive, gini_naive


class TestHandComputedTwoUnits:
    """t=[10,10], m=[8,2]: every value checked by hand (P=0.5)."""

    def test_dissimilarity(self, two_unit_counts):
        assert dissimilarity(two_unit_counts) == pytest.approx(0.6)

    def test_gini(self, two_unit_counts):
        assert gini(two_unit_counts) == pytest.approx(0.6)

    def test_isolation(self, two_unit_counts):
        assert isolation(two_unit_counts) == pytest.approx(0.68)

    def test_interaction(self, two_unit_counts):
        assert interaction(two_unit_counts) == pytest.approx(0.32)

    def test_information(self, two_unit_counts):
        e_unit = -(0.8 * math.log2(0.8) + 0.2 * math.log2(0.2))
        assert information(two_unit_counts) == pytest.approx(1 - e_unit)

    def test_atkinson_half(self, two_unit_counts):
        # terms: 2 * 10 * sqrt(0.8*0.2) = 8; inner = 8/10 = 0.8; A = 1-0.8^2
        assert atkinson(two_unit_counts, b=0.5) == pytest.approx(0.36)


class TestHandComputedUnevenUnits:
    """t=[6,4], m=[3,1]: P=0.4, unequal unit sizes."""

    @pytest.fixture()
    def counts(self):
        return UnitCounts([6, 4], [3, 1])

    def test_dissimilarity(self, counts):
        assert dissimilarity(counts) == pytest.approx(0.25)

    def test_gini(self, counts):
        assert gini(counts) == pytest.approx(0.25)

    def test_isolation(self, counts):
        assert isolation(counts) == pytest.approx(0.4375)

    def test_interaction(self, counts):
        assert interaction(counts) == pytest.approx(0.5625)

    def test_information(self, counts):
        def entropy(p):
            return -(p * math.log2(p) + (1 - p) * math.log2(1 - p))

        expected = 1 - (6 * entropy(0.5) + 4 * entropy(0.25)) / (
            10 * entropy(0.4)
        )
        assert information(counts) == pytest.approx(expected)


class TestExtremes:
    def test_complete_segregation_all_ones(self):
        counts = UnitCounts([5, 5, 5, 5], [5, 0, 5, 0])
        assert dissimilarity(counts) == pytest.approx(1.0)
        assert gini(counts) == pytest.approx(1.0)
        assert information(counts) == pytest.approx(1.0)
        assert atkinson(counts) == pytest.approx(1.0)
        assert isolation(counts) == pytest.approx(1.0)
        assert interaction(counts) == pytest.approx(0.0)

    def test_perfect_evenness_all_zeros(self):
        counts = UnitCounts([10, 20, 30], [3, 6, 9])
        assert dissimilarity(counts) == pytest.approx(0.0)
        assert gini(counts) == pytest.approx(0.0, abs=1e-12)
        assert information(counts) == pytest.approx(0.0, abs=1e-12)
        assert atkinson(counts) == pytest.approx(0.0, abs=1e-12)
        assert isolation(counts) == pytest.approx(0.3)
        assert interaction(counts) == pytest.approx(0.7)

    def test_single_unit_is_trivially_even(self):
        counts = UnitCounts([50], [20])
        assert dissimilarity(counts) == pytest.approx(0.0)
        assert gini(counts) == pytest.approx(0.0)
        assert isolation(counts) == pytest.approx(0.4)


class TestDegenerateInputs:
    @pytest.mark.parametrize(
        "t, m",
        [
            ([10, 10], [0, 0]),      # no minority
            ([10, 10], [10, 10]),    # no majority
            ([], []),                # empty
        ],
    )
    def test_nan_for_degenerate(self, t, m):
        counts = UnitCounts(t, m)
        for func in (dissimilarity, gini, information, isolation,
                     interaction, atkinson):
            assert math.isnan(func(counts))

    def test_empty_units_are_dropped(self):
        with_empty = UnitCounts([10, 0, 10, 0], [8, 0, 2, 0])
        without = UnitCounts([10, 10], [8, 2])
        assert dissimilarity(with_empty) == pytest.approx(
            dissimilarity(without)
        )
        assert with_empty.n_units == 2


class TestAgainstNaiveOracles:
    @pytest.mark.parametrize("seed", range(8))
    def test_gini_matches_double_sum(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.integers(1, 40, size=12)
        m = rng.integers(0, t + 1)
        counts = UnitCounts(t, m)
        if counts.is_degenerate():
            pytest.skip("degenerate draw")
        assert gini(counts) == pytest.approx(gini_naive(counts))

    @pytest.mark.parametrize("seed", range(8))
    def test_dissimilarity_matches_definition(self, seed):
        rng = np.random.default_rng(100 + seed)
        t = rng.integers(1, 40, size=9)
        m = rng.integers(0, t + 1)
        counts = UnitCounts(t, m)
        if counts.is_degenerate():
            pytest.skip("degenerate draw")
        assert dissimilarity(counts) == pytest.approx(
            dissimilarity_naive(counts)
        )


class TestAtkinsonParameter:
    def test_invalid_b_raises(self):
        counts = UnitCounts([10, 10], [8, 2])
        with pytest.raises(ValueError):
            atkinson(counts, b=0.0)
        with pytest.raises(ValueError):
            atkinson(counts, b=1.0)
        with pytest.raises(ValueError):
            atkinson(counts, b=-0.3)

    def test_b_changes_value_on_asymmetric_data(self):
        counts = UnitCounts([10, 10, 10], [9, 3, 0])
        low = atkinson(counts, b=0.1)
        high = atkinson(counts, b=0.9)
        assert low != pytest.approx(high)

    def test_all_b_in_unit_interval(self):
        counts = UnitCounts([10, 10, 10], [9, 3, 0])
        for b in (0.1, 0.25, 0.5, 0.75, 0.9):
            value = atkinson(counts, b=b)
            assert 0.0 <= value <= 1.0
