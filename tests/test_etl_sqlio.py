"""Tests of the SQLite input path (the paper's JDBC query input)."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import TableError
from repro.etl.sqlio import read_query, write_table_sql
from repro.etl.table import IntColumn, Table


@pytest.fixture()
def conn():
    connection = sqlite3.connect(":memory:")
    connection.execute(
        "CREATE TABLE individuals (directorID INTEGER, gender TEXT, "
        "sectors TEXT)"
    )
    connection.executemany(
        "INSERT INTO individuals VALUES (?, ?, ?)",
        [
            (0, "F", "education|health"),
            (1, "M", "construction"),
            (2, "F", ""),
        ],
    )
    connection.commit()
    yield connection
    connection.close()


class TestReadQuery:
    def test_basic_select(self, conn):
        table = read_query(conn, "SELECT directorID, gender FROM individuals")
        assert len(table) == 3
        assert isinstance(table.column("directorID"), IntColumn)
        assert table.categorical("gender").values() == ["F", "M", "F"]

    def test_multi_valued_column(self, conn):
        table = read_query(
            conn,
            "SELECT gender, sectors FROM individuals",
            multi_valued=["sectors"],
        )
        assert table.multivalued("sectors").values() == [
            frozenset({"education", "health"}),
            frozenset({"construction"}),
            frozenset(),
        ]

    def test_projection_and_where(self, conn):
        table = read_query(
            conn,
            "SELECT gender FROM individuals WHERE gender = 'F'",
        )
        assert len(table) == 2

    def test_integer_coercion_from_text(self, conn):
        conn.execute("CREATE TABLE t (x TEXT)")
        conn.execute("INSERT INTO t VALUES ('42')")
        table = read_query(conn, "SELECT x FROM t", integer=["x"])
        assert table.ints("x").values() == [42]

    def test_integer_coercion_failure(self, conn):
        conn.execute("CREATE TABLE t (x TEXT)")
        conn.execute("INSERT INTO t VALUES ('abc')")
        with pytest.raises(TableError, match="non-integer"):
            read_query(conn, "SELECT x FROM t", integer=["x"])

    def test_null_becomes_empty_string(self, conn):
        conn.execute("CREATE TABLE t (x TEXT)")
        conn.execute("INSERT INTO t VALUES (NULL)")
        table = read_query(conn, "SELECT x FROM t")
        assert table.categorical("x").values() == [""]

    def test_path_based_connection(self, tmp_path):
        db = tmp_path / "data.sqlite"
        with sqlite3.connect(db) as connection:
            connection.execute("CREATE TABLE t (n INTEGER)")
            connection.execute("INSERT INTO t VALUES (7)")
            connection.commit()
        table = read_query(db, "SELECT n FROM t")
        assert table.ints("n").values() == [7]


class TestWriteTableSql:
    def test_round_trip(self, tmp_path):
        db = tmp_path / "rt.sqlite"
        table = Table.from_dict(
            {
                "gender": ["F", "M"],
                "tags": [{"a", "b"}, set()],
                "unitID": [0, 1],
            }
        )
        write_table_sql(table, db, "final")
        back = read_query(
            db, "SELECT * FROM final", multi_valued=["tags"],
        )
        assert back.categorical("gender").values() == ["F", "M"]
        assert back.multivalued("tags").values() == [
            frozenset({"a", "b"}),
            frozenset(),
        ]
        assert back.ints("unitID").values() == [0, 1]

    def test_replace_and_append(self, tmp_path):
        db = tmp_path / "ra.sqlite"
        table = Table.from_dict({"x": ["a"]})
        write_table_sql(table, db, "t")
        write_table_sql(table, db, "t", if_exists="append")
        assert len(read_query(db, "SELECT * FROM t")) == 2
        write_table_sql(table, db, "t", if_exists="replace")
        assert len(read_query(db, "SELECT * FROM t")) == 1

    def test_fail_on_existing(self, tmp_path):
        db = tmp_path / "f.sqlite"
        table = Table.from_dict({"x": ["a"]})
        write_table_sql(table, db, "t")
        with pytest.raises(sqlite3.OperationalError):
            write_table_sql(table, db, "t")

    def test_invalid_arguments(self, tmp_path):
        table = Table.from_dict({"x": ["a"]})
        with pytest.raises(TableError):
            write_table_sql(table, tmp_path / "x.sqlite", "t",
                            if_exists="bogus")
        with pytest.raises(TableError, match="unsafe"):
            write_table_sql(table, tmp_path / "x.sqlite", "t; DROP")


class TestSqlToPipeline:
    def test_cube_from_sql_query(self, tmp_path):
        """The paper's JDBC path: query -> finalTable -> cube."""
        from repro.cube.builder import build_cube
        from repro.etl.schema import Schema

        db = tmp_path / "pipeline.sqlite"
        source = Table.from_dict(
            {
                "gender": ["F"] * 8 + ["M"] * 2 + ["F"] * 2 + ["M"] * 8,
                "unitID": [0] * 10 + [1] * 10,
            }
        )
        write_table_sql(source, db, "final")
        table = read_query(db, "SELECT gender, unitID FROM final")
        schema = Schema.build(segregation=["gender"], unit="unitID")
        cube = build_cube(table, schema, min_population=1, min_minority=1)
        assert cube.value("D", sa={"gender": "F"}) == pytest.approx(0.6)
