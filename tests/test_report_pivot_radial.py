"""Tests of the Fig. 1 pivot and Fig. 5 radial renderings."""

from __future__ import annotations

import math

import pytest

from repro.cube.builder import build_cube
from repro.errors import ReportError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.report.pivot import pivot, pivot_values
from repro.report.radial import radial_series, render_radial


@pytest.fixture(scope="module")
def cube():
    rows = []
    for region, spread in (("north", (9, 1)), ("south", (5, 5))):
        a, b = spread
        rows += [("F", "young", region, 0)] * a + [("F", "young", region, 1)] * b
        rows += [("M", "young", region, 0)] * b + [("M", "young", region, 1)] * a
        rows += [("F", "elder", region, 0)] * 5 + [("F", "elder", region, 1)] * 5
        rows += [("M", "elder", region, 0)] * 5 + [("M", "elder", region, 1)] * 5
    table = Table.from_rows(["sex", "age", "region", "unitID"], rows)
    schema = Schema.build(segregation=["sex", "age"], context=["region"],
                          unit="unitID")
    return build_cube(table, schema, min_population=1, min_minority=1)


class TestPivotValues:
    def test_axes_and_star(self, cube):
        row_labels, col_labels, matrix = pivot_values(
            cube, "D", "sex", "region", fixed_sa={"age": "young"}
        )
        assert row_labels == ["F", "M", "*"]
        assert col_labels == ["north", "south", "*"]
        assert len(matrix) == 3 and len(matrix[0]) == 3

    def test_cell_values_match_point_queries(self, cube):
        _, _, matrix = pivot_values(cube, "D", "sex", "region")
        expected = cube.value("D", sa={"sex": "F"}, ca={"region": "north"})
        assert matrix[0][0] == pytest.approx(expected)

    def test_star_row_is_coarser_cell(self, cube):
        row_labels, _, matrix = pivot_values(cube, "D", "sex", "region")
        star_row = matrix[row_labels.index("*")]
        # (⋆ SA | region) cells are context-only -> nan.
        assert all(math.isnan(v) for v in star_row[:2])

    def test_same_attribute_rejected(self, cube):
        with pytest.raises(ReportError):
            pivot_values(cube, "D", "sex", "sex")

    def test_unknown_attribute_rejected(self, cube):
        with pytest.raises(ReportError):
            pivot_values(cube, "D", "sex", "nope")

    def test_two_sa_attributes(self, cube):
        row_labels, col_labels, matrix = pivot_values(cube, "D", "sex", "age")
        value = cube.value("D", sa={"sex": "F", "age": "young"})
        assert matrix[0][0] == pytest.approx(value)


class TestPivotRendering:
    def test_fig1_style_output(self, cube):
        text = pivot(cube, "D", "sex", "region")
        lines = text.splitlines()
        assert "sex \\ region" in lines[0]
        assert "north" in lines[0]
        assert "-" in text               # nan cells rendered as dash
        assert any(line.startswith("F") for line in lines)


class TestRadial:
    def test_series_covers_all_context_values(self, cube):
        series = radial_series(cube, "region", sa={"sex": "F"})
        assert series.labels == ["north", "south"]
        assert series.index_names == cube.metadata.index_names
        north = dict(zip(series.index_names,
                         series.values[series.labels.index("north")]))
        assert north["D"] == pytest.approx(
            cube.value("D", sa={"sex": "F"}, ca={"region": "north"})
        )

    def test_index_subset(self, cube):
        series = radial_series(cube, "region", sa={"sex": "F"},
                               index_names=["D", "G"])
        assert series.index_names == ["D", "G"]
        assert len(series.values[0]) == 2

    def test_sa_attribute_rejected_as_context(self, cube):
        with pytest.raises(ReportError):
            radial_series(cube, "sex")

    def test_unknown_attribute_rejected(self, cube):
        with pytest.raises(ReportError):
            radial_series(cube, "nope")

    def test_rows_shape(self, cube):
        series = radial_series(cube, "region", sa={"sex": "F"})
        rows = series.rows()
        assert rows[0][0] == "north"
        assert len(rows[0]) == 1 + len(series.index_names)

    def test_render_contains_bars_and_table(self, cube):
        series = radial_series(cube, "region", sa={"sex": "F"},
                               index_names=["D"])
        text = render_radial(series)
        assert "D by region" in text
        assert "north" in text
