"""Tests of cell coordinates, keys and wildcard handling."""

from __future__ import annotations

import pytest

from repro.cube.coordinates import (
    coordinate_columns,
    decode_part,
    describe_key,
    encode_query,
    is_parent,
    key_of_itemset,
    make_key,
    parents_of,
)
from repro.errors import CubeError
from repro.itemsets.items import Item, ItemDictionary, ItemKind


@pytest.fixture()
def dictionary():
    d = ItemDictionary()
    d.add(Item("sex", "F"), ItemKind.SA)        # 0
    d.add(Item("sex", "M"), ItemKind.SA)        # 1
    d.add(Item("age", "young"), ItemKind.SA)    # 2
    d.add(Item("region", "north"), ItemKind.CA) # 3
    d.add(Item("sector", "a"), ItemKind.CA)     # 4
    d.add(Item("sector", "b"), ItemKind.CA)     # 5
    return d


class TestEncodeQuery:
    def test_single_values(self, dictionary):
        key = encode_query(dictionary, sa={"sex": "F"}, ca={"region": "north"})
        assert key == (frozenset({0}), frozenset({3}))

    def test_star_is_empty(self, dictionary):
        assert encode_query(dictionary) == (frozenset(), frozenset())
        assert encode_query(dictionary, sa={}) == (frozenset(), frozenset())

    def test_multivalue_containment(self, dictionary):
        key = encode_query(dictionary, ca={"sector": ["a", "b"]})
        assert key == (frozenset(), frozenset({4, 5}))

    def test_unknown_value_raises(self, dictionary):
        with pytest.raises(CubeError, match="unknown coordinate"):
            encode_query(dictionary, sa={"sex": "X"})

    def test_kind_mismatch_raises(self, dictionary):
        with pytest.raises(CubeError, match="used as"):
            encode_query(dictionary, sa={"region": "north"})
        with pytest.raises(CubeError):
            encode_query(dictionary, ca={"sex": "F"})


class TestDecodeAndDescribe:
    def test_decode_single(self, dictionary):
        decoded = decode_part(frozenset({0, 3}), dictionary)
        assert decoded == {"sex": "F", "region": "north"}

    def test_decode_multi(self, dictionary):
        decoded = decode_part(frozenset({4, 5}), dictionary)
        assert decoded == {"sector": ("a", "b")}

    def test_describe_key(self, dictionary):
        key = make_key({0}, {3})
        assert describe_key(key, dictionary) == "[sex=F | region=north]"
        assert describe_key(make_key([], []), dictionary) == "[* | *]"

    def test_coordinate_columns_with_stars(self, dictionary):
        key = make_key({0}, {4, 5})
        cols = coordinate_columns(
            key, dictionary, ["sex", "age"], ["region", "sector"]
        )
        assert cols == {
            "sex": "F",
            "age": "*",
            "region": "*",
            "sector": "{a,b}",
        }

    def test_key_of_itemset_splits(self, dictionary):
        assert key_of_itemset([0, 3], dictionary) == (
            frozenset({0}), frozenset({3})
        )


class TestLattice:
    def test_parents_of_removes_one_item(self):
        key = make_key({0, 2}, {3})
        parents = parents_of(key)
        assert (frozenset({2}), frozenset({3})) in parents
        assert (frozenset({0}), frozenset({3})) in parents
        assert (frozenset({0, 2}), frozenset()) in parents
        assert len(parents) == 3

    def test_is_parent(self):
        child = make_key({0, 2}, {3})
        assert is_parent(make_key({0}, {3}), child)
        assert is_parent(make_key({0, 2}, set()), child)
        assert not is_parent(make_key(set(), set()), child)   # two levels up
        assert not is_parent(make_key({1}, {3}), child)       # not a subset
        assert not is_parent(child, child)
