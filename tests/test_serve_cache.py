"""Tests of the hot-query LRU: semantics, threads, publish invalidation.

Three layers of contract:

* :class:`QueryCache` — LRU order, eviction, counters, ``maxsize=0``
  disabling, and generation checks (a store computed before an
  invalidate must be dropped, never resurrected);
* :class:`CachedCubeService` — memoized queries return exactly the
  wrapped service's answers (hits and misses alike), keys canonicalize
  without collisions, and many reader threads see consistent answers;
* publish flow — dumping a new timeline date and calling ``refresh()``
  swaps the served date and evicts every stale entry.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cube.builder import build_cube
from repro.serve.cache import CachedCubeService, QueryCache, canonical_key
from repro.serve.service import CubeService
from repro.store import dump_into_timeline, dump_snapshot


@pytest.fixture(scope="module")
def built(schools):
    table, schema = schools
    return build_cube(table, schema, min_population=10, min_minority=3)


@pytest.fixture(scope="module")
def snapshot_dir(built, tmp_path_factory):
    path = tmp_path_factory.mktemp("cache") / "snap"
    dump_snapshot(built, path)
    return path


class TestQueryCache:
    def test_miss_then_hit(self):
        cache = QueryCache(maxsize=4)
        found, value, generation = cache.lookup("a")
        assert not found
        assert cache.store("a", 1, generation)
        found, value, _ = cache.lookup("a")
        assert found and value == 1
        assert cache.stats() == {
            "hits": 1, "misses": 1, "evictions": 0,
            "size": 1, "maxsize": 4, "generation": 0,
        }

    def test_lru_eviction_order(self):
        cache = QueryCache(maxsize=2)
        for key in ("a", "b"):
            _, _, generation = cache.lookup(key)
            cache.store(key, key.upper(), generation)
        cache.lookup("a")                       # refresh a: b is now LRU
        _, _, generation = cache.lookup("c")
        cache.store("c", "C", generation)       # evicts b
        assert cache.lookup("a")[0]
        assert cache.lookup("c")[0]
        assert not cache.lookup("b")[0]
        assert cache.stats()["evictions"] == 1

    def test_maxsize_zero_disables_storage(self):
        cache = QueryCache(maxsize=0)
        _, _, generation = cache.lookup("a")
        assert not cache.store("a", 1, generation)
        assert not cache.lookup("a")[0]
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            QueryCache(maxsize=-1)

    def test_invalidate_clears_and_bumps_generation(self):
        cache = QueryCache(maxsize=4)
        _, _, generation = cache.lookup("a")
        cache.store("a", 1, generation)
        assert cache.invalidate() == 1
        assert not cache.lookup("a")[0]
        assert cache.stats()["generation"] == 1

    def test_stale_inflight_store_is_dropped(self):
        """A result computed against the pre-publish cube must not land
        after the publish — that would resurrect stale data forever."""
        cache = QueryCache(maxsize=4)
        _, _, generation = cache.lookup("q")     # computation starts...
        cache.invalidate()                       # ...publish happens...
        assert not cache.store("q", "stale", generation)  # ...store drops
        assert not cache.lookup("q")[0]


class TestCanonicalKey:
    def test_order_insensitive_params_and_coordinates(self):
        a = canonical_key("top", {"k": 5, "index_name": "D"})
        b = canonical_key("top", {"index_name": "D", "k": 5})
        assert a == b
        c = canonical_key("slice", {"sa": {"x": "1", "y": "2"}, "ca": None})
        d = canonical_key("slice", {"ca": None, "sa": {"y": "2", "x": "1"}})
        assert c == d

    def test_type_distinctions_never_collide(self):
        assert canonical_key("v", {"x": 2}) != canonical_key("v", {"x": "2"})
        assert canonical_key("v", {"x": 2}) != canonical_key("v", {"x": 2.0})
        assert canonical_key("v", {"x": 1}) != canonical_key("v", {"x": True})
        assert canonical_key("s", {"sa": {"a": "b"}}) != canonical_key(
            "s", {"sa": "a=b"}
        )

    def test_multi_valued_coordinates(self):
        a = canonical_key("s", {"ca": {"city": ["x", "y"]}})
        b = canonical_key("s", {"ca": {"city": ["y", "x"]}})
        assert a == b   # containment constraints are order-free sets
        assert a != canonical_key("s", {"ca": {"city": "x"}})


class TestCachedCubeService:
    def test_answers_match_and_hits_count(self, snapshot_dir):
        cached = CachedCubeService(CubeService(snapshot_dir))
        plain = CubeService(snapshot_dir)
        for _ in range(3):
            assert (
                cached.top("D", k=5, min_minority=5)
                == plain.top("D", k=5, min_minority=5)
            )
            assert cached.value("D", sa={"ethnicity": "minority"}) == (
                plain.value("D", sa={"ethnicity": "minority"})
            )
        stats = cached.cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 4

    def test_distinct_params_are_distinct_entries(self, snapshot_dir):
        cached = CachedCubeService(CubeService(snapshot_dir))
        assert len(cached.top("D", k=3)) == 3
        assert len(cached.top("D", k=5)) == 5
        assert len(cached.top("D", k=3)) == 3   # hit, still 3
        stats = cached.cache.stats()
        assert stats["misses"] == 2 and stats["hits"] == 1

    def test_info_surfaces_counters_and_is_never_cached(self, snapshot_dir):
        cached = CachedCubeService(CubeService(snapshot_dir))
        cached.top("D", k=5)
        cached.top("D", k=5)
        info = cached.info()
        assert info["cache"]["hits"] == 1
        assert info["cache"]["misses"] == 1
        assert info["cells"] > 0
        cached.top("D", k=5)
        assert cached.info()["cache"]["hits"] == 2  # live, not cached

    def test_passthrough_attributes(self, snapshot_dir):
        cached = CachedCubeService(CubeService(snapshot_dir))
        assert cached.index_names == cached.service.index_names
        assert cached.date is None
        assert cached.dates() == []
        assert cached.refresh() is False   # not timeline-backed

    def test_cache_disabled_still_correct(self, snapshot_dir):
        cached = CachedCubeService(CubeService(snapshot_dir), maxsize=0)
        plain = CubeService(snapshot_dir)
        for _ in range(2):
            assert (
                cached.top("D", k=5, min_minority=5)
                == plain.top("D", k=5, min_minority=5)
            )
        stats = cached.cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_concurrent_readers_agree_with_reference(self, snapshot_dir):
        """The CubeService thread-pool test, through the cache: mixed
        hits and misses from 8 threads must all equal the reference."""
        reference = CubeService(snapshot_dir)
        expected = {
            "top": reference.top("D", k=5, min_minority=5),
            "slice": [
                s.key for s in reference.slice(ca={"city": "Rivertown"})
            ],
            "value": reference.value("D", sa={"ethnicity": "minority"}),
            "pivot": reference.pivot("D", "ethnicity", "city"),
            "children": {s.key for s in reference.children()},
        }
        # Tiny cache: concurrent evictions and re-computations included.
        service = CachedCubeService(CubeService(snapshot_dir), maxsize=3)

        def worker(i: int):
            kind = ("top", "slice", "value", "pivot", "children")[i % 5]
            if kind == "top":
                return kind, service.top("D", k=5, min_minority=5)
            if kind == "slice":
                return kind, [
                    s.key for s in service.slice(ca={"city": "Rivertown"})
                ]
            if kind == "value":
                return kind, service.value("D", sa={"ethnicity": "minority"})
            if kind == "pivot":
                return kind, service.pivot("D", "ethnicity", "city")
            return kind, {s.key for s in service.children()}

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(200)))
        assert len(results) == 200
        for kind, got in results:
            assert got == expected[kind], f"{kind} diverged under threads"
        stats = service.cache.stats()
        assert stats["hits"] + stats["misses"] == 200


class TestPublishInvalidation:
    @pytest.fixture()
    def timeline(self, built, schools, tmp_path):
        """A two-date timeline plus a third cube ready to publish."""
        table, schema = schools
        # Same data at both dates keeps the test about the *plumbing*;
        # the date-2 cube covers one city only, so staleness (serving
        # the old answers after a publish) is observable.
        root = tmp_path / "tl"
        dump_into_timeline(root, 0, built)
        dump_into_timeline(root, 1, built, parent_date=0, parent=built)
        one_city = table.filter(
            table.categorical("city").mask_eq("Rivertown")
        )
        smaller = build_cube(
            one_city, schema, min_population=10, min_minority=3
        )
        return root, smaller

    def test_refresh_swaps_date_and_evicts(self, timeline, built, schools):
        table, schema = schools
        root, smaller = timeline
        service = CachedCubeService(CubeService(root))
        assert service.date == 1
        before = service.top("D", k=100)
        assert service.refresh() is False    # nothing new yet
        assert service.cache.stats()["size"] == 1

        dump_into_timeline(root, 2, smaller, parent_date=1, parent=built)
        assert service.refresh() is True
        assert service.date == 2
        assert service.cache.stats()["size"] == 0       # evicted
        assert service.cache.stats()["generation"] == 1
        after = service.top("D", k=100)
        assert len(after) < len(before)      # genuinely the new cube
        assert service.dates() == [0, 1, 2]

    def test_inflight_pre_publish_result_never_lands(self, timeline, built):
        root, smaller = timeline
        service = CachedCubeService(CubeService(root))
        old_service = service.service
        # Simulate a request that started before the publish: it read
        # the generation, computed against the old cube, and stores
        # after refresh() ran.
        key = canonical_key("top", {"k": 100})
        _, _, generation = service.cache.lookup(key)
        stale = old_service.top("D", k=100)

        dump_into_timeline(root, 2, smaller, parent_date=1, parent=built)
        assert service.refresh() is True
        assert not service.cache.store(key, stale, generation)
        fresh = service.top("D", k=100)
        assert len(fresh) < len(stale)

    def test_trend_spans_published_dates(self, timeline, built):
        root, smaller = timeline
        service = CachedCubeService(CubeService(root))
        sa = {"ethnicity": "minority"}
        assert len(service.trend("D", sa=sa)) == 2
        dump_into_timeline(root, 2, smaller, parent_date=1, parent=built)
        service.refresh()
        series = service.trend("D", sa=sa)
        assert [d for d, _ in series] == [0, 1, 2]
        assert all(
            not math.isnan(v) or True for _, v in series
        )
