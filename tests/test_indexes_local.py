"""Tests of local (per-unit) index decompositions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.indexes.binary import (
    dissimilarity,
    information,
    interaction,
    isolation,
)
from repro.indexes.counts import UnitCounts
from repro.indexes.local import (
    local_dissimilarity,
    local_information,
    local_interaction,
    local_isolation,
    local_profile,
    location_quotient,
)

from tests.test_indexes_properties import unit_counts


class TestDecompositionSums:
    """The defining property: local contributions sum to the global index."""

    @given(unit_counts())
    @settings(max_examples=80, deadline=None)
    def test_dissimilarity_sum(self, counts):
        assert local_dissimilarity(counts).sum() == pytest.approx(
            dissimilarity(counts)
        )

    @given(unit_counts())
    @settings(max_examples=80, deadline=None)
    def test_information_sum(self, counts):
        parts = local_information(counts)
        if np.isnan(parts).all():
            assert math.isnan(information(counts))
        else:
            assert parts.sum() == pytest.approx(information(counts))

    @given(unit_counts())
    @settings(max_examples=80, deadline=None)
    def test_isolation_and_interaction_sums(self, counts):
        assert local_isolation(counts).sum() == pytest.approx(
            isolation(counts)
        )
        assert local_interaction(counts).sum() == pytest.approx(
            interaction(counts)
        )


class TestLocationQuotient:
    def test_parity_is_one(self):
        counts = UnitCounts([10, 20], [3, 6])
        assert location_quotient(counts) == pytest.approx([1.0, 1.0])

    def test_over_under_representation(self):
        counts = UnitCounts([10, 10], [8, 2])
        lq = location_quotient(counts)
        assert lq[0] == pytest.approx(1.6)
        assert lq[1] == pytest.approx(0.4)

    def test_degenerate_is_nan(self):
        counts = UnitCounts([10], [0])
        assert np.isnan(location_quotient(counts)).all()


class TestLocalProfile:
    def test_sorted_by_d_contribution(self):
        counts = UnitCounts([10, 10, 10], [9, 3, 0])
        rows = local_profile(counts)
        contributions = [r.d_contribution for r in rows]
        assert contributions == sorted(contributions, reverse=True)

    def test_row_fields_consistent(self):
        counts = UnitCounts([10, 30], [8, 6])
        rows = local_profile(counts)
        by_unit = {r.unit: r for r in rows}
        assert by_unit[0].population == 10
        assert by_unit[0].minority == 8
        assert by_unit[0].proportion == pytest.approx(0.8)
        assert by_unit[1].location_quotient == pytest.approx(
            0.2 / (14 / 40)
        )

    def test_identifies_driving_unit(self):
        """The unit hosting the concentrated minority tops the profile."""
        counts = UnitCounts([10, 10, 10, 10], [9, 1, 1, 1])
        rows = local_profile(counts)
        assert rows[0].unit == 0
