"""End-to-end validation against planted ground truth.

These tests push analytically-constructed data through the *entire*
public API — ETL, mining, cube, reports — and assert exact equality with
the closed-form index values the construction implies.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    build_cube,
    generate_schools,
    run_tabular,
    simpson_reversals,
    top_contexts,
)
from repro.cube.naive import NaiveCubeBuilder
from repro.data.synthetic import checkerboard_table, planted_table, uniform_table
from repro.etl.csvio import read_table, write_table
from repro.etl.schema import Schema
from repro.indexes import binary
from repro.report.pivot import pivot
from repro.report.xlsx import rows_to_workbook


class TestPlantedGroundTruth:
    def test_full_pipeline_reproduces_planted_indexes(self):
        planted = planted_table([40, 60, 100], [0.9, 0.5, 0.05])
        cube = build_cube(planted.table, planted.schema,
                          min_population=1, min_minority=1)
        cell = cube.cell(sa={"gender": "F"})
        for name, func in (
            ("D", binary.dissimilarity),
            ("G", binary.gini),
            ("H", binary.information),
            ("Iso", binary.isolation),
            ("Int", binary.interaction),
            ("A", binary.atkinson),
        ):
            assert cell.value(name) == pytest.approx(func(planted.counts)), name

    def test_checkerboard_maximal(self):
        planted = checkerboard_table(6, 30)
        cube = build_cube(planted.table, planted.schema,
                          min_population=1, min_minority=1)
        cell = cube.cell(sa={"gender": "F"})
        assert cell.value("D") == pytest.approx(1.0)
        assert cell.value("Iso") == pytest.approx(1.0)

    def test_uniform_minimal(self):
        planted = uniform_table(8, 20, share=0.25)
        cube = build_cube(planted.table, planted.schema,
                          min_population=1, min_minority=1)
        cell = cube.cell(sa={"gender": "F"})
        assert cell.value("D") == pytest.approx(0.0, abs=1e-12)
        assert cell.value("Iso") == pytest.approx(0.25)

    def test_csv_round_trip_preserves_cube(self, tmp_path):
        """finalTable -> CSV -> finalTable -> identical cube."""
        planted = planted_table([30, 30], [0.8, 0.2])
        path = tmp_path / "final.csv"
        write_table(planted.table, path)
        back = read_table(path, integer=["unitID"])
        cube_a = build_cube(planted.table, planted.schema,
                            min_population=1, min_minority=1)
        cube_b = build_cube(back, planted.schema,
                            min_population=1, min_minority=1)
        cell_a = cube_a.cell(sa={"gender": "F"})
        cell_b = cube_b.cell(sa={"gender": "F"})
        assert cell_a.value("D") == pytest.approx(cell_b.value("D"))


class TestSchoolsStory:
    """The quickstart narrative must actually hold on the shipped data."""

    def test_rivertown_tops_discovery(self, schools):
        table, schema = schools
        result = run_tabular(table, schema, "school")
        found = top_contexts(result.cube, "D", k=4, min_minority=20)
        assert any("Rivertown" in f.description for f in found[:2])

    def test_citywide_view_understates_segregation(self, schools):
        """The cross-city roll-up sits below the Rivertown cell: analysing
        at the wrong granularity hides segregation (paper §2)."""
        table, schema = schools
        result = run_tabular(table, schema, "school")
        overall = result.cube.value("D", sa={"ethnicity": "minority"})
        rivertown = result.cube.value(
            "D", sa={"ethnicity": "minority"}, ca={"city": "Rivertown"}
        )
        assert rivertown > overall

    def test_sex_is_not_segregated(self, schools):
        table, schema = schools
        result = run_tabular(table, schema, "school")
        cell = result.cube.cell(sa={"sex": "F"})
        assert cell.value("D") < 0.2

    def test_workbook_and_pivot_render(self, schools, tmp_path):
        table, schema = schools
        result = run_tabular(table, schema, "school")
        path = rows_to_workbook(result.cube.to_rows()).save(
            tmp_path / "schools.xlsx"
        )
        assert path.exists()
        text = pivot(result.cube, "D", "ethnicity", "city")
        assert "Rivertown" in text


class TestSimpsonEndToEnd:
    def test_constructed_paradox_detected_through_api(self):
        from repro.etl.table import Table

        rows = []
        rows += [("F", "x", 0)] * 9 + [("F", "x", 1)] * 1
        rows += [("M", "x", 0)] * 1 + [("M", "x", 1)] * 9
        rows += [("F", "y", 0)] * 1 + [("F", "y", 1)] * 9
        rows += [("M", "y", 0)] * 9 + [("M", "y", 1)] * 1
        table = Table.from_rows(["sex", "ctx", "unitID"], rows)
        schema = Schema.build(segregation=["sex"], context=["ctx"],
                              unit="unitID")
        cube = build_cube(table, schema, min_population=1, min_minority=1)
        assert cube.value("D", sa={"sex": "F"}) == pytest.approx(0.0)
        reversals = simpson_reversals(cube, "D", low=0.1, high=0.5)
        assert reversals


class TestNaiveOracleOnRealisticData:
    def test_builders_agree_on_schools(self, schools):
        table, schema = schools
        from repro.cube.cube import check_same_cells
        from repro.etl.builder import tabular_final_table

        final, final_schema = tabular_final_table(table, schema, "school")
        kw = dict(min_population=20, min_minority=5, max_sa_items=2,
                  max_ca_items=1)
        from repro.cube.builder import SegregationDataCubeBuilder

        smart = SegregationDataCubeBuilder(**kw).build(final, final_schema)
        naive = NaiveCubeBuilder(**kw).build(final, final_schema)
        assert check_same_cells(smart, naive) == []
