"""Chunked source readers: ``stream_csv`` / ``stream_query`` / ``iter_chunks``.

The streaming contract: concatenating a reader's chunks reproduces the
one-shot reader cell for cell, column typing is decided per call (never
flipped by a later chunk), and degenerate inputs (empty files, empty
result sets) still yield exactly one — empty — chunk so downstream
schema validation sees the columns.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.data.synthetic import random_final_table
from repro.errors import TableError
from repro.etl import (
    IntColumn,
    MultiValuedColumn,
    Table,
    encode_stream,
    iter_chunks,
    read_query,
    read_table,
    stream_csv,
    stream_query,
    write_table,
    write_table_sql,
)
from repro.itemsets.transactions import encode_table


@pytest.fixture()
def mixed_table():
    """A table exercising categorical, multi-valued and int columns."""
    table, schema = random_final_table(
        137, 6,
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 3},
        multi_valued_ca={"mv": 3},
        seed=9, skew=0.3,
    )
    return table, schema


def _rows(table: Table) -> list:
    return [
        tuple(row[name] for name in table.names)
        for row in table.iter_rows()
    ]


def _concat_rows(chunks) -> tuple[list, list]:
    names = None
    rows: list = []
    for chunk in chunks:
        if names is None:
            names = chunk.names
        else:
            assert chunk.names == names
        rows.extend(_rows(chunk))
    return names, rows


# ----------------------------------------------------------------------
# stream_csv
# ----------------------------------------------------------------------

@pytest.mark.parametrize("chunk_rows", [1, 7, 64, 10_000])
def test_stream_csv_matches_read_table(mixed_table, tmp_path, chunk_rows):
    table, schema = mixed_table
    path = tmp_path / "ft.csv"
    write_table(table, path)
    reference = read_table(path, multi_valued=["mv"], integer=["unitID"])
    names, rows = _concat_rows(
        stream_csv(path, multi_valued=["mv"], integer=["unitID"],
                   chunk_rows=chunk_rows)
    )
    assert names == reference.names
    assert rows == _rows(reference)


def test_stream_csv_schema_derives_column_sets(mixed_table, tmp_path):
    table, schema = mixed_table
    path = tmp_path / "ft.csv"
    write_table(table, path)
    chunk = next(stream_csv(path, schema=schema, chunk_rows=50))
    assert isinstance(chunk.column("mv"), MultiValuedColumn)
    assert isinstance(chunk.column("unitID"), IntColumn)
    assert len(chunk) == 50


def test_stream_csv_data_less_file_yields_one_empty_chunk(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("g,unitID\n")
    chunks = list(stream_csv(path, integer=["unitID"]))
    assert len(chunks) == 1
    assert len(chunks[0]) == 0
    assert chunks[0].names == ["g", "unitID"]


def test_stream_csv_rejects_empty_file_and_bad_rows(tmp_path):
    empty = tmp_path / "no_header.csv"
    empty.write_text("")
    with pytest.raises(TableError):
        list(stream_csv(empty))
    ragged = tmp_path / "ragged.csv"
    ragged.write_text("a,b\n1,2\n3\n")
    with pytest.raises(TableError):
        list(stream_csv(ragged))


def test_stream_csv_rejects_bad_chunk_rows(tmp_path):
    path = tmp_path / "x.csv"
    path.write_text("a\n1\n")
    with pytest.raises(TableError):
        list(stream_csv(path, chunk_rows=0))


# ----------------------------------------------------------------------
# stream_query
# ----------------------------------------------------------------------

@pytest.mark.parametrize("chunk_rows", [1, 7, 1000])
def test_stream_query_matches_read_query(mixed_table, tmp_path, chunk_rows):
    table, schema = mixed_table
    db_path = tmp_path / "ft.db"
    write_table_sql(table, db_path, "final")
    sql = "SELECT * FROM final"
    reference = read_query(db_path, sql, multi_valued=["mv"])
    names, rows = _concat_rows(
        stream_query(db_path, sql, multi_valued=["mv"],
                     chunk_rows=chunk_rows)
    )
    assert names == reference.names
    assert rows == _rows(reference)


def test_stream_query_locks_int_detection_across_chunks():
    conn = sqlite3.connect(":memory:")
    conn.execute("CREATE TABLE t (x)")
    conn.executemany("INSERT INTO t VALUES (?)", [(1,), (2,), ("abc",)])
    stream = stream_query(conn, "SELECT x FROM t ORDER BY rowid",
                          chunk_rows=2)
    first = next(stream)
    assert isinstance(first.column("x"), IntColumn)
    with pytest.raises(TableError):
        next(stream)


def test_stream_query_empty_result_yields_one_empty_chunk():
    conn = sqlite3.connect(":memory:")
    conn.execute("CREATE TABLE t (x, y)")
    chunks = list(stream_query(conn, "SELECT x, y FROM t"))
    assert len(chunks) == 1
    assert len(chunks[0]) == 0
    assert chunks[0].names == ["x", "y"]


def test_stream_query_rejects_statements_without_result_set(tmp_path):
    conn = sqlite3.connect(":memory:")
    with pytest.raises(TableError):
        list(stream_query(conn, "CREATE TABLE t (x)"))


# ----------------------------------------------------------------------
# iter_chunks / encode_stream
# ----------------------------------------------------------------------

def test_iter_chunks_reproduces_table(mixed_table):
    table, _ = mixed_table
    names, rows = _concat_rows(iter_chunks(table, 13))
    assert names == table.names
    assert rows == _rows(table)


def test_iter_chunks_rederives_per_chunk_categories(mixed_table):
    # A chunk's categorical universe holds only the values it saw —
    # the property that makes iter_chunks a faithful stand-in for the
    # file readers in first-seen accumulation tests.
    table, _ = mixed_table
    chunk = next(iter_chunks(table, 3))
    assert set(chunk.column("r").categories) == set(
        chunk.column("r")[i] for i in range(3)
    )


def test_encode_stream_matches_one_shot_encode(mixed_table, tmp_path):
    table, schema = mixed_table
    path = tmp_path / "ft.csv"
    write_table(table, path)
    reference = encode_table(table, schema)
    streamed = encode_stream(
        stream_csv(path, schema=schema, chunk_rows=11), schema
    )
    assert (streamed._indptr == reference._indptr).all()
    assert (streamed._indices == reference._indices).all()
    assert (streamed.units == reference.units).all()
