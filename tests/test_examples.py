"""Smoke tests: every shipped example must run end to end.

Examples are executed in-process (``runpy``) inside a temporary working
directory so the artefacts they write do not pollute the repository.
"""

from __future__ import annotations

import os
import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.fixture()
def in_tmp_dir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_at_least_three_examples_shipped():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, in_tmp_dir, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_writes_workbook(in_tmp_dir, capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    assert (in_tmp_dir / "schools_cube.xlsx").exists()
    out = capsys.readouterr().out
    assert "Rivertown" in out
    assert "Granularity matters" in out


def test_italian_boards_answers_three_questions(in_tmp_dir, capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "italian_boards.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert out.count("Q: how much are women segregated") == 3
    assert (in_tmp_dir / "italy_scube.xlsx").exists()


def test_persist_and_serve_round_trips(in_tmp_dir, capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "persist_and_serve.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "parity with live cube: identical" in out
    assert "zero rebuild" in out
    assert (in_tmp_dir / "schools_snapshot" / "manifest.json").exists()


def test_big_build_streams_and_serves(in_tmp_dir, capsys):
    runpy.run_path(str(EXAMPLES_DIR / "big_build.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "without building a table" in out
    assert "spilled to scratch: True" in out
    assert "parity vs columnar: identical" in out
    assert (in_tmp_dir / "big_snapshot" / "manifest.json").exists()


def test_estonian_temporal_reports_trend(in_tmp_dir, capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "estonian_temporal.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "bootstrap CI" in out
    assert "random-allocation baseline" in out
