"""Chunked encoding parity: ``from_chunks`` == ``encode_table``, bit for bit.

The accumulator's contract is exact equality of the CSR arrays, the
unit labels and the item dictionary (ids, names, kinds) with the
one-shot encoder, for every chunk size, every codec, and with or
without the disk spill engaged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import random_final_table
from repro.errors import MiningError, SchemaError
from repro.etl import Table, iter_chunks
from repro.etl.schema import Schema
from repro.itemsets.transactions import (
    EncodeAccumulator,
    TransactionDatabase,
    encode_table,
)


@pytest.fixture()
def chunk_table():
    return random_final_table(
        211, 7,
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 4},
        multi_valued_ca={"mv": 3},
        seed=17, skew=0.4,
    )


def assert_same_db(got: TransactionDatabase,
                   want: TransactionDatabase) -> None:
    assert np.array_equal(got._indptr, want._indptr)
    assert np.array_equal(got._indices, want._indices)
    assert np.array_equal(got.units, want.units)
    assert len(got.dictionary) == len(want.dictionary)
    for i in range(len(want.dictionary)):
        assert got.dictionary.item(i) == want.dictionary.item(i)
        assert got.dictionary.kind(i) == want.dictionary.kind(i)


@pytest.mark.parametrize("codec", ["packed", "bool", "ewah"])
@pytest.mark.parametrize("chunk_rows", [1, 3, 7])
def test_from_chunks_matches_encode_table(chunk_table, codec, chunk_rows):
    table, schema = chunk_table
    reference = encode_table(table, schema, codec=codec)
    streamed = TransactionDatabase.from_chunks(
        iter_chunks(table, chunk_rows), schema, codec=codec
    )
    assert streamed.codec == codec
    assert_same_db(streamed, reference)


def test_from_chunks_spill_roundtrip(chunk_table, tmp_path):
    table, schema = chunk_table
    reference = encode_table(table, schema)
    accumulator = EncodeAccumulator(
        schema, spill_bytes=64, scratch_dir=tmp_path
    )
    for chunk in iter_chunks(table, 5):
        accumulator.add_chunk(chunk)
    assert accumulator.spilled          # 64-byte budget must overflow
    assert accumulator.n_rows == len(table)
    assert any(tmp_path.iterdir())      # scratch files exist pre-merge
    streamed = accumulator.finalize()
    assert_same_db(streamed, reference)
    assert not any(tmp_path.iterdir())  # scratch cleaned up by finalize


def test_accumulator_without_spill_never_touches_disk(chunk_table, tmp_path):
    table, schema = chunk_table
    accumulator = EncodeAccumulator(schema, scratch_dir=tmp_path)
    for chunk in iter_chunks(table, 64):
        accumulator.add_chunk(chunk)
    assert not accumulator.spilled
    assert_same_db(accumulator.finalize(), encode_table(table, schema))


def test_accumulator_rejects_use_after_finalize(chunk_table):
    table, schema = chunk_table
    accumulator = EncodeAccumulator(schema)
    accumulator.add_chunk(table)
    accumulator.finalize()
    with pytest.raises(MiningError):
        accumulator.add_chunk(table)
    with pytest.raises(MiningError):
        accumulator.finalize()


def test_accumulator_validates_each_chunk(chunk_table):
    _, schema = chunk_table
    accumulator = EncodeAccumulator(schema)
    bad = Table.from_dict({"wrong": ["x"], "unitID": [0]})
    with pytest.raises(SchemaError):
        accumulator.add_chunk(bad)


def test_accumulator_rejects_bad_arguments(chunk_table):
    _, schema = chunk_table
    with pytest.raises(MiningError):
        EncodeAccumulator(schema, spill_bytes=-1)
    with pytest.raises(Exception):
        EncodeAccumulator(schema, codec="no-such-codec")


def test_from_chunks_category_order_is_first_seen():
    # Chunks carry chunk-local category universes; the accumulator must
    # reassemble the *global* first-seen order encode_table would use.
    schema = Schema.build(segregation=["g"], context=["r"], unit="unitID")
    full = Table.from_dict({
        "g": ["b", "a", "a", "c"],
        "r": ["y", "x", "y", "z"],
        "unitID": [0, 1, 0, 1],
    })
    streamed = TransactionDatabase.from_chunks(
        iter_chunks(full, 1), schema
    )
    assert_same_db(streamed, encode_table(full, schema))
    items = [streamed.dictionary.item(i)
             for i in range(len(streamed.dictionary))]
    assert [it.value for it in items] == ["b", "a", "c", "y", "x", "z"]
