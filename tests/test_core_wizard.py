"""Tests of the CLI wizard (run in-process via main(argv))."""

from __future__ import annotations

import zipfile

import pytest

from repro.core.wizard import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["demo"],
            ["generate", "schools"],
            ["tabular", "--individuals", "x.csv", "--unit-attr", "u",
             "--sa", "g"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenerate:
    def test_generate_schools(self, tmp_path, capsys):
        assert main(["generate", "schools", "--out-dir", str(tmp_path)]) == 0
        assert (tmp_path / "students.csv").exists()
        assert "students.csv" in capsys.readouterr().out

    def test_generate_italy_writes_three_csvs(self, tmp_path, capsys):
        assert main(["generate", "italy", "--out-dir", str(tmp_path)]) == 0
        for name in ("individual.csv", "group.csv", "individualGroup.csv",
                     "finalTable_tabular.csv"):
            assert (tmp_path / name).exists(), name

    def test_generate_estonia_has_intervals(self, tmp_path):
        assert main(["generate", "estonia", "--out-dir", str(tmp_path)]) == 0
        text = (tmp_path / "individualGroup.csv").read_text()
        header = text.splitlines()[0]
        assert header == "individualID,groupID,start,end"


class TestDemo:
    def test_demo_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "scube.xlsx"
        code = main(
            [
                "demo",
                "--companies", "300",
                "--min-population", "10",
                "--min-minority", "3",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "[step 1/5]" in captured
        assert "[step 5/5]" in captured
        assert "top-10 contexts" in captured
        with zipfile.ZipFile(out) as zf:
            assert "xl/workbook.xml" in zf.namelist()


class TestTabular:
    def test_tabular_on_generated_csv(self, tmp_path, capsys):
        main(["generate", "schools", "--out-dir", str(tmp_path)])
        out = tmp_path / "cube.xlsx"
        code = main(
            [
                "tabular",
                "--individuals", str(tmp_path / "students.csv"),
                "--unit-attr", "school",
                "--sa", "ethnicity", "sex",
                "--ca", "city",
                "--min-population", "10",
                "--min-minority", "3",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "Rivertown" in capsys.readouterr().out


class TestBipartiteCommand:
    def test_bipartite_on_generated_csvs(self, tmp_path, capsys):
        main(["generate", "italy", "--out-dir", str(tmp_path)])
        out = tmp_path / "bip.xlsx"
        code = main(
            [
                "bipartite",
                "--individuals", str(tmp_path / "individual.csv"),
                "--groups", str(tmp_path / "group.csv"),
                "--membership", str(tmp_path / "individualGroup.csv"),
                "--sa", "gender", "age", "birthplace",
                "--ca", "residence",
                "--group-ca", "sector", "province", "region",
                "--min-population", "20",
                "--min-minority", "5",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.exists()

    def test_bipartite_with_snapshot_date(self, tmp_path, capsys):
        main(["generate", "estonia", "--out-dir", str(tmp_path)])
        out = tmp_path / "snap.xlsx"
        code = main(
            [
                "bipartite",
                "--individuals", str(tmp_path / "individual.csv"),
                "--groups", str(tmp_path / "group.csv"),
                "--membership", str(tmp_path / "individualGroup.csv"),
                "--sa", "gender", "age", "birthplace",
                "--group-ca", "sector", "county",
                "--min-population", "10",
                "--min-minority", "3",
                "--snapshot-date", "2010",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "snapshot at 2010" in capsys.readouterr().out
