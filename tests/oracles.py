"""Brute-force reference implementations used as test oracles.

Deliberately slow and simple: direct transcriptions of the definitions,
with no shared state or pruning, against which the optimised library
implementations are checked.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.indexes.counts import UnitCounts
from repro.itemsets.transactions import TransactionDatabase


def gini_naive(counts: UnitCounts) -> float:
    """O(n^2) Gini segregation index straight from the double sum."""
    if counts.is_degenerate():
        return float("nan")
    t, m = counts.t, counts.m
    total, p_overall = counts.total, counts.proportion
    p = counts.unit_proportions
    num = 0.0
    for i in range(len(t)):
        for j in range(len(t)):
            num += t[i] * t[j] * abs(p[i] - p[j])
    return num / (2 * total * total * p_overall * (1 - p_overall))


def dissimilarity_naive(counts: UnitCounts) -> float:
    """Definition-level dissimilarity."""
    if counts.is_degenerate():
        return float("nan")
    total_minority = counts.minority_total
    total_majority = counts.majority_total
    acc = 0.0
    for t_i, m_i in zip(counts.t, counts.m):
        acc += abs(m_i / total_minority - (t_i - m_i) / total_majority)
    return acc / 2.0


def frequent_itemsets_bruteforce(
    db: TransactionDatabase,
    minsup: int,
    items: "list[int] | None" = None,
    max_len: "int | None" = None,
) -> dict[frozenset[int], int]:
    """All frequent itemsets by trying every combination of present items."""
    universe = sorted(
        set(items) if items is not None else range(db.n_items)
    )
    rows = [frozenset(r) for r in db.rows]
    longest = max_len if max_len is not None else len(universe)
    out: dict[frozenset[int], int] = {}
    for size in range(1, longest + 1):
        for combo in combinations(universe, size):
            candidate = frozenset(combo)
            support = sum(1 for row in rows if candidate <= row)
            if support >= minsup:
                out[candidate] = support
    return out


def closed_bruteforce(
    supports: dict[frozenset[int], int]
) -> dict[frozenset[int], int]:
    """Closed itemsets by checking every strict superset in the dict."""
    out = {}
    for itemset, support in supports.items():
        absorbed = any(
            other > itemset and other_support == support
            for other, other_support in supports.items()
        )
        if not absorbed:
            out[itemset] = support
    return out


def projection_bruteforce(
    n_left: int, n_right: int, edges: "list[tuple[int, int]]"
) -> dict[tuple[int, int], int]:
    """Group-side projection weights by counting shared members directly."""
    members: dict[int, set[int]] = {g: set() for g in range(n_right)}
    for left, right in edges:
        members[right].add(left)
    weights = {}
    for g1 in range(n_right):
        for g2 in range(g1 + 1, n_right):
            shared = len(members[g1] & members[g2])
            if shared:
                weights[(g1, g2)] = shared
    return weights


def unit_counts_bruteforce(
    units: np.ndarray, minority_mask: np.ndarray
) -> UnitCounts:
    """Per-unit counts by explicit looping."""
    n_units = int(units.max()) + 1 if len(units) else 0
    t = np.zeros(n_units, dtype=np.int64)
    m = np.zeros(n_units, dtype=np.int64)
    for unit, is_minority in zip(units, minority_mask):
        t[unit] += 1
        if is_minority:
            m[unit] += 1
    return UnitCounts(t, m)
