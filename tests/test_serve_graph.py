"""Tests of the /graph/* serving tier over graph snapshots."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import CubeConfig
from repro.core.scenarios import run_bipartite, run_director_graph
from repro.data.italy import ItalyConfig, generate_italy
from repro.data.synthetic import random_bipartite_world
from repro.graph.bipartite import project_onto_groups
from repro.graph.components import connected_components
from repro.serve import payloads
from repro.serve.graph import GraphService
from repro.serve.http import make_app, wsgi_get
from repro.store import dump_snapshot
from repro.store.graph import (
    GraphArtifact,
    dump_graph_snapshot,
    validate_graph_snapshot,
)


@pytest.fixture(scope="module")
def world():
    bipartite, _ = random_bipartite_world(3000, 150, seed=23)
    projection = project_onto_groups(bipartite, max_left_degree=30)
    clustering = connected_components(projection.graph)
    return projection, clustering


@pytest.fixture(scope="module")
def graph_dir(world, tmp_path_factory):
    projection, clustering = world
    return dump_graph_snapshot(
        GraphArtifact.from_result(projection, clustering),
        tmp_path_factory.mktemp("serve_graph") / "snap",
    )


@pytest.fixture(scope="module")
def cube_dir(tmp_path_factory, italy_small):
    from repro.core.scenarios import run_tabular
    from repro.data.italy import italy_tabular_individuals

    seats, schema = italy_tabular_individuals(italy_small)
    result = run_tabular(seats, schema, "sector",
                         CubeConfig(min_population=10, min_minority=3,
                                    max_sa_items=2, max_ca_items=1))
    return dump_snapshot(result.cube,
                         tmp_path_factory.mktemp("serve_cube") / "snap")


@pytest.fixture(scope="module")
def app(cube_dir, graph_dir):
    return make_app(cube_dir, graph_source=graph_dir)


class TestGraphService:
    def test_degrees_match_graph(self, world, graph_dir):
        projection, _ = world
        service = GraphService.open(graph_dir)
        assert service.degrees().tolist() \
            == projection.graph.degrees().tolist()
        assert np.allclose(service.weighted_degrees(),
                           projection.graph.weighted_degrees())

    def test_cluster_sizes_match_clustering(self, world, graph_dir):
        _, clustering = world
        service = GraphService.open(graph_dir)
        assert service.cluster_sizes().tolist() \
            == clustering.sizes().tolist()

    def test_clusters_ranked_by_size(self, graph_dir):
        service = GraphService.open(graph_dir)
        top = service.clusters(k=5)
        sizes = [entry["size"] for entry in top]
        assert sizes == sorted(sizes, reverse=True)
        giant = service.clusters(k=1)[0]
        assert giant["size"] == int(service.cluster_sizes().max())

    def test_min_size_filters(self, graph_dir):
        service = GraphService.open(graph_dir)
        all_of_them = service.clusters(k=10**6)
        big = service.clusters(k=10**6, min_size=3)
        assert len(big) <= len(all_of_them)
        assert all(entry["size"] >= 3 for entry in big)

    def test_node_out_of_range(self, graph_dir):
        service = GraphService.open(graph_dir)
        with pytest.raises(ValueError, match="out of range"):
            service.node(10**9)
        with pytest.raises(ValueError, match="out of range"):
            service.node(-1)

    def test_top_degree_sorted(self, graph_dir):
        service = GraphService.open(graph_dir)
        top = service.top_degree(k=5)
        degrees = [entry["degree"] for entry in top]
        assert degrees == sorted(degrees, reverse=True)


class TestGraphEndpoints:
    def test_info_byte_parity(self, app):
        status, headers, body = wsgi_get(app, "/graph/info")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert body == payloads.dumps(
            payloads.graph_info_payload(app.graph_service)
        )

    def test_info_fields(self, app, world):
        projection, clustering = world
        _, _, body = wsgi_get(app, "/graph/info")
        info = json.loads(body)
        assert info["n_nodes"] == projection.graph.n_nodes
        assert info["n_edges"] == projection.graph.n_edges
        assert info["n_clusters"] == clustering.n_clusters
        assert info["method"] == "connected-components"

    def test_clusters_byte_parity(self, app):
        status, _, body = wsgi_get(app, "/graph/clusters?k=4&min_size=2")
        assert status == 200
        assert body == payloads.dumps(payloads.graph_clusters_payload(
            app.graph_service, k=4, min_size=2
        ))

    def test_degree_single_node_byte_parity(self, app):
        status, _, body = wsgi_get(app, "/graph/degree?node=3")
        assert status == 200
        assert body == payloads.dumps(payloads.graph_degree_payload(
            app.graph_service, node=3
        ))

    def test_degree_topk_byte_parity(self, app):
        status, _, body = wsgi_get(app, "/graph/degree?k=7")
        assert status == 200
        assert body == payloads.dumps(payloads.graph_degree_payload(
            app.graph_service, k=7
        ))

    def test_cube_endpoints_still_serve(self, app):
        status, _, body = wsgi_get(app, "/info")
        assert status == 200
        assert b"cells" in body

    def test_errors(self, app):
        status, _, body = wsgi_get(app, "/graph/degree?node=abc")
        assert status == 400 and b"error" in body
        status, _, body = wsgi_get(app, "/graph/degree?node=99999999")
        assert status == 400 and b"out of range" in body
        status, _, body = wsgi_get(app, "/graph/clusters?k=oops")
        assert status == 400 and b"error" in body
        status, _, body = wsgi_get(app, "/graph/nope")
        assert status == 404

    def test_post_rejected(self, app):
        status, _, _ = wsgi_get(app, "/graph/info", method="POST")
        assert status == 405

    def test_unmounted_graph_404(self, cube_dir):
        bare = make_app(cube_dir)
        for path in ("/graph/info", "/graph/clusters", "/graph/degree"):
            status, _, body = wsgi_get(bare, path)
            assert status == 404
            assert b"no graph snapshot mounted" in body


class TestScenarioEmission:
    def test_director_graph_emits_snapshot(self, italy_small, tmp_path):
        cfg = CubeConfig(min_population=10, min_minority=3,
                         max_sa_items=2, max_ca_items=1)
        result = run_director_graph(
            italy_small, cube_config=cfg,
            graph_snapshot_path=tmp_path / "g2",
        )
        assert result.graph_snapshot == tmp_path / "g2"
        assert "graph_snapshot" in result.timings
        snapshot = validate_graph_snapshot(result.graph_snapshot)
        assert snapshot.n_nodes == italy_small.n_individuals
        assert snapshot.manifest.n_clusters == result.n_units
        assert snapshot.manifest.provenance["scenario"] == "director-graph"

    def test_bipartite_emits_snapshot_and_serves(self, tmp_path):
        dataset = generate_italy(ItalyConfig(n_companies=250, seed=13))
        result = run_bipartite(dataset, graph_snapshot_path=tmp_path / "g3")
        snapshot = validate_graph_snapshot(result.graph_snapshot)
        assert snapshot.n_nodes == dataset.n_groups
        assert snapshot.manifest.provenance["scenario"] == "bipartite"
        cube_dir = dump_snapshot(result.cube, tmp_path / "cube")
        app = make_app(cube_dir, graph_source=result.graph_snapshot)
        status, _, body = wsgi_get(app, "/graph/info")
        assert status == 200
        assert json.loads(body)["n_clusters"] == result.n_units

    def test_no_path_no_snapshot(self, italy_small):
        cfg = CubeConfig(min_population=10, min_minority=3,
                         max_sa_items=2, max_ca_items=1)
        result = run_director_graph(italy_small, cube_config=cfg)
        assert result.graph_snapshot is None
        assert "graph_snapshot" not in result.timings
