"""Tests of bootstrap confidence intervals and randomisation tests."""

from __future__ import annotations

import math

import pytest

from repro.errors import SegregationIndexError
from repro.indexes.base import get_index
from repro.indexes.binary import dissimilarity
from repro.indexes.counts import UnitCounts
from repro.indexes.inference import bootstrap_ci, randomization_test


@pytest.fixture()
def segregated():
    """Strongly segregated counts: D = 0.8."""
    return UnitCounts([50, 50], [45, 5])


@pytest.fixture()
def balanced():
    """Perfectly even counts: D = 0."""
    return UnitCounts([50, 50], [15, 15])


class TestBootstrap:
    def test_interval_contains_estimate_for_stable_data(self, segregated):
        result = bootstrap_ci(dissimilarity, segregated, n_boot=200, seed=1)
        assert result.low <= result.estimate <= result.high
        assert result.estimate == pytest.approx(0.8)

    def test_interval_is_ordered_and_bounded(self, segregated):
        result = bootstrap_ci(dissimilarity, segregated, n_boot=200, seed=2)
        assert 0.0 <= result.low <= result.high <= 1.0

    def test_reproducible_with_seed(self, segregated):
        a = bootstrap_ci(dissimilarity, segregated, n_boot=100, seed=7)
        b = bootstrap_ci(dissimilarity, segregated, n_boot=100, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_different_seeds_differ(self, segregated):
        a = bootstrap_ci(dissimilarity, segregated, n_boot=100, seed=1)
        b = bootstrap_ci(dissimilarity, segregated, n_boot=100, seed=2)
        assert (a.low, a.high) != (b.low, b.high)

    def test_invalid_parameters(self, segregated):
        with pytest.raises(SegregationIndexError):
            bootstrap_ci(dissimilarity, segregated, n_boot=0)
        with pytest.raises(SegregationIndexError):
            bootstrap_ci(dissimilarity, segregated, alpha=1.5)

    def test_narrower_interval_with_larger_units(self):
        small = UnitCounts([20, 20], [15, 5])
        large = UnitCounts([2000, 2000], [1500, 500])
        r_small = bootstrap_ci(dissimilarity, small, n_boot=200, seed=3)
        r_large = bootstrap_ci(dissimilarity, large, n_boot=200, seed=3)
        assert (r_large.high - r_large.low) < (r_small.high - r_small.low)


class TestRandomization:
    def test_segregated_data_is_significant(self, segregated):
        result = randomization_test(dissimilarity, segregated,
                                    n_permutations=300, seed=0)
        assert result.p_value < 0.02
        assert result.observed == pytest.approx(0.8)
        assert result.excess > 0.5

    def test_even_data_is_not_significant(self, balanced):
        result = randomization_test(dissimilarity, balanced,
                                    n_permutations=300, seed=0)
        assert result.p_value > 0.5
        assert result.observed == pytest.approx(0.0)

    def test_expected_under_null_positive_small_sample(self):
        """Random segregation baseline: D > 0 in expectation for small M."""
        counts = UnitCounts([10] * 10, [1] * 10)
        result = randomization_test(dissimilarity, counts,
                                    n_permutations=200, seed=4)
        assert result.expected_under_null > 0.1

    def test_reproducible_with_seed(self, segregated):
        a = randomization_test(dissimilarity, segregated, n_permutations=50,
                               seed=9)
        b = randomization_test(dissimilarity, segregated, n_permutations=50,
                               seed=9)
        assert a.p_value == b.p_value

    def test_invalid_parameters(self, segregated):
        with pytest.raises(SegregationIndexError):
            randomization_test(dissimilarity, segregated, n_permutations=0)

    def test_works_with_registered_indexes(self, segregated):
        for name in ("D", "G", "H", "Iso", "A"):
            spec = get_index(name)
            result = randomization_test(spec.compute, segregated,
                                        n_permutations=50, seed=0)
            assert not math.isnan(result.p_value)
