"""Tests of the three GraphClustering methods (vs networkx oracles)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.attributes import NodeAttributeTable
from repro.graph.components import bfs_distances, connected_components
from repro.graph.graph import Graph
from repro.graph.stoc import stoc_clustering
from repro.graph.threshold import threshold_components, threshold_profile


def to_networkx(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n_nodes))
    g.add_weighted_edges_from(graph.edges())
    return g


class TestConnectedComponents:
    def test_simple_two_components(self):
        g = Graph.from_edges(5, [(0, 1, 1), (1, 2, 1), (3, 4, 1)])
        clustering = connected_components(g)
        assert clustering.n_clusters == 2
        labels = clustering.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_isolated_nodes_are_singletons(self):
        g = Graph(3)
        clustering = connected_components(g)
        assert clustering.n_clusters == 3

    def test_labels_deterministic_by_lowest_node(self):
        g = Graph.from_edges(4, [(2, 3, 1)])
        clustering = connected_components(g)
        assert clustering.labels.tolist() == [0, 1, 2, 2]

    def test_clustering_helpers(self):
        g = Graph.from_edges(5, [(0, 1, 1), (1, 2, 1), (3, 4, 1)])
        clustering = connected_components(g)
        assert clustering.sizes().tolist() == [3, 2]
        assert clustering.giant() == 0
        assert clustering.members(1).tolist() == [3, 4]
        assert clustering.node_unit()[4] == 1

    def test_relabel_by_size(self):
        g = Graph.from_edges(5, [(3, 4, 1), (0, 1, 1), (1, 2, 1)])
        clustering = connected_components(g).relabel_by_size()
        assert clustering.labels[0] == 0  # biggest component first
        sizes = clustering.sizes()
        assert sizes.tolist() == sorted(sizes.tolist(), reverse=True)


@given(
    st.integers(1, 30),
    st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=80),
)
@settings(max_examples=60, deadline=None)
def test_components_match_networkx(n, raw_edges):
    g = Graph(n)
    for u, v in raw_edges:
        u, v = u % n, v % n
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, 1.0)
    ours = connected_components(g)
    expected = list(nx.connected_components(to_networkx(g)))
    assert ours.n_clusters == len(expected)
    # Same partition: every networkx component has a single label.
    for component in expected:
        labels = {int(ours.labels[u]) for u in component}
        assert len(labels) == 1


class TestBfsDistances:
    def test_distances_on_path(self):
        g = Graph.from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)])
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_max_hops_bounds_search(self):
        g = Graph.from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)])
        assert bfs_distances(g, 0, max_hops=2) == {0: 0, 1: 1, 2: 2}


class TestThresholdComponents:
    def test_splits_giant_component_only(self):
        # Giant: 0-1-2-3 chained with weak links; separate pair 4-5 weak.
        g = Graph.from_edges(
            6,
            [(0, 1, 5.0), (1, 2, 1.0), (2, 3, 5.0), (4, 5, 1.0)],
        )
        clustering = threshold_components(g, min_weight=2.0)
        labels = clustering.labels
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[1] != labels[2]
        # The small component's weak edge survives: not part of the giant.
        assert labels[4] == labels[5]

    def test_zero_threshold_equals_plain_components(self):
        g = Graph.from_edges(5, [(0, 1, 1.0), (2, 3, 1.0)])
        a = threshold_components(g, 0.0)
        b = connected_components(g)
        assert a.labels.tolist() == b.labels.tolist()

    def test_negative_threshold_rejected(self):
        with pytest.raises(GraphError):
            threshold_components(Graph(1), -1.0)

    def test_profile_monotone_units(self):
        rng = np.random.default_rng(3)
        g = Graph(30)
        for _ in range(60):
            u, v = rng.integers(0, 30, 2)
            if u != v:
                g.add_edge(int(u), int(v), float(rng.integers(1, 5)))
        rows = threshold_profile(g, [0.0, 2.0, 4.0, 10.0])
        units = [r[1] for r in rows]
        assert units == sorted(units)          # higher threshold, more units
        assert rows[0][1] == connected_components(g).n_clusters


class TestSToC:
    def _attributed_two_blobs(self):
        """Two cliques with distinct attributes, one weak bridge."""
        g = Graph(10)
        for block in (range(0, 5), range(5, 10)):
            nodes = list(block)
            for i, u in enumerate(nodes):
                for v in nodes[i + 1:]:
                    g.add_edge(u, v, 3.0)
        g.add_edge(4, 5, 1.0)
        attrs = NodeAttributeTable.from_columns(
            10, {"sector": ["a"] * 5 + ["b"] * 5}
        )
        return g, attrs

    def test_separates_attribute_blocks(self):
        g, attrs = self._attributed_two_blobs()
        clustering = stoc_clustering(g, attrs, tau=0.4, alpha=0.5, horizon=2,
                                     seed=1)
        labels = clustering.labels
        assert len(set(labels[:5].tolist())) == 1
        assert len(set(labels[5:].tolist())) == 1
        assert labels[0] != labels[9]

    def test_tau_one_without_attributes_merges_components(self):
        g, _ = self._attributed_two_blobs()
        clustering = stoc_clustering(g, None, tau=1.0, horizon=3, seed=0)
        # Everything reachable within the horizon joins one ball.
        assert clustering.n_clusters <= 2

    def test_tau_zero_gives_singletons(self):
        g, attrs = self._attributed_two_blobs()
        clustering = stoc_clustering(g, attrs, tau=0.0, seed=0)
        assert clustering.n_clusters == g.n_nodes

    def test_every_node_labelled(self):
        g, attrs = self._attributed_two_blobs()
        clustering = stoc_clustering(g, attrs, tau=0.5, seed=2)
        assert (clustering.labels >= 0).all()

    def test_seed_reproducibility(self):
        g, attrs = self._attributed_two_blobs()
        a = stoc_clustering(g, attrs, tau=0.5, seed=5)
        b = stoc_clustering(g, attrs, tau=0.5, seed=5)
        assert a.labels.tolist() == b.labels.tolist()

    def test_degree_seeding_deterministic(self):
        g, attrs = self._attributed_two_blobs()
        a = stoc_clustering(g, attrs, tau=0.5, seed_order="degree")
        b = stoc_clustering(g, attrs, tau=0.5, seed_order="degree")
        assert a.labels.tolist() == b.labels.tolist()

    def test_parameter_validation(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            stoc_clustering(g, None, tau=1.5)
        with pytest.raises(GraphError):
            stoc_clustering(g, None, alpha=-0.1)
        with pytest.raises(GraphError):
            stoc_clustering(g, None, horizon=0)
        with pytest.raises(GraphError):
            stoc_clustering(g, None, seed_order="bogus")

    def test_attribute_size_mismatch(self):
        g = Graph(3)
        attrs = NodeAttributeTable.from_columns(2, {"a": ["x", "y"]})
        with pytest.raises(GraphError):
            stoc_clustering(g, attrs)
