"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.data.italy import ItalyConfig, generate_italy
from repro.data.schools import generate_schools
from repro.data.synthetic import random_final_table
from repro.indexes.counts import UnitCounts


@pytest.fixture(scope="session")
def italy_small():
    """A small synthetic Italian boards dataset (session-cached)."""
    return generate_italy(ItalyConfig(n_companies=400, seed=13))


@pytest.fixture(scope="session")
def schools():
    """The deterministic two-city schools table and schema."""
    return generate_schools()


@pytest.fixture()
def two_unit_counts():
    """Hand-checked counts: t=[10,10], m=[8,2]."""
    return UnitCounts([10, 10], [8, 2])


@pytest.fixture()
def small_final_table():
    """A small random finalTable with single- and multi-valued attributes."""
    return random_final_table(
        300,
        5,
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 3},
        multi_valued_ca={"mv": 3},
        seed=42,
    )
