"""Tests of discovery ranking and Simpson-reversal detection."""

from __future__ import annotations

import pytest

from repro.cube.builder import build_cube
from repro.cube.explorer import (
    simpson_reversals,
    summarize_cube,
    top_contexts,
)
from repro.errors import CubeError
from repro.etl.schema import Schema
from repro.etl.table import Table


@pytest.fixture(scope="module")
def paradox_cube():
    """Globally even, locally segregated: a Simpson-style construction.

    Overall, women are spread evenly over units 0/1; but within context
    x women sit in unit 0 and within context y in unit 1.
    """
    rows = []
    rows += [("F", "x", 0)] * 9 + [("F", "x", 1)] * 1
    rows += [("M", "x", 0)] * 1 + [("M", "x", 1)] * 9
    rows += [("F", "y", 0)] * 1 + [("F", "y", 1)] * 9
    rows += [("M", "y", 0)] * 9 + [("M", "y", 1)] * 1
    table = Table.from_rows(["sex", "ctx", "unitID"], rows)
    schema = Schema.build(segregation=["sex"], context=["ctx"], unit="unitID")
    return build_cube(table, schema, min_population=1, min_minority=1)


class TestTopContexts:
    def test_discoveries_ranked_and_decoded(self, paradox_cube):
        found = top_contexts(paradox_cube, "D", k=3)
        assert found[0].rank == 1
        assert found[0].value >= found[-1].value
        assert "|" in found[0].description

    def test_guards_apply(self, paradox_cube):
        found = top_contexts(paradox_cube, "D", k=10, min_minority=100)
        assert found == []

    def test_proportion_field(self, paradox_cube):
        found = top_contexts(paradox_cube, "D", k=1)
        assert 0 <= found[0].proportion <= 1


class TestSimpsonReversals:
    def test_detects_the_construction(self, paradox_cube):
        # Global D for women is 0 (even), per-context D is 0.8.
        reversals = simpson_reversals(paradox_cube, "D", low=0.2, high=0.6)
        assert reversals, "expected at least one reversal"
        best = reversals[0]
        assert best.parent_value <= 0.2
        assert best.child_value >= 0.6
        assert best.jump == pytest.approx(
            best.child_value - best.parent_value
        )
        assert "[sex=F | *]" in {r.parent_description for r in reversals} or (
            "[sex=M | *]" in {r.parent_description for r in reversals}
        )

    def test_no_reversals_on_flat_cube(self):
        rows = (
            [("F", "x", 0)] * 5 + [("F", "x", 1)] * 5
            + [("M", "x", 0)] * 5 + [("M", "x", 1)] * 5
        )
        table = Table.from_rows(["sex", "ctx", "unitID"], rows)
        schema = Schema.build(segregation=["sex"], context=["ctx"],
                              unit="unitID")
        cube = build_cube(table, schema, min_population=1, min_minority=1)
        assert simpson_reversals(cube, "D") == []

    def test_invalid_thresholds(self, paradox_cube):
        with pytest.raises(CubeError):
            simpson_reversals(paradox_cube, "D", low=0.9, high=0.1)

    def test_min_minority_guard(self, paradox_cube):
        assert simpson_reversals(paradox_cube, "D", low=0.2, high=0.6,
                                 min_minority=1000) == []


class TestSummarize:
    def test_summary_fields(self, paradox_cube):
        summary = summarize_cube(paradox_cube)
        assert summary["cells"] == len(paradox_cube)
        assert summary["context_only_cells"] >= 1
        assert summary["defined_cells_per_index"]["D"] > 0
        assert summary["mode"] == "all"
