"""Tests of validity intervals and membership snapshots."""

from __future__ import annotations

import pytest

from repro.errors import TableError
from repro.etl.temporal import (
    ALWAYS,
    Interval,
    MembershipEdge,
    TemporalMembership,
)


class TestInterval:
    def test_contains_half_open(self):
        interval = Interval(2000, 2005)
        assert not interval.contains(1999)
        assert interval.contains(2000)
        assert interval.contains(2004)
        assert not interval.contains(2005)

    def test_open_bounds(self):
        assert Interval(None, 2005).contains(-10_000)
        assert Interval(2000, None).contains(10_000)
        assert ALWAYS.contains(0)

    def test_invalid_order_rejected(self):
        with pytest.raises(TableError):
            Interval(2005, 2005)
        with pytest.raises(TableError):
            Interval(2005, 2000)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))
        assert not Interval(0, 10).overlaps(Interval(10, 15))
        assert Interval(None, None).overlaps(Interval(5, 6))

    def test_contains_at_open_bounds_extremes(self):
        assert Interval(None, 2005).contains(2004)
        assert not Interval(None, 2005).contains(2005)
        assert Interval(2000, None).contains(2000)
        assert not Interval(2000, None).contains(1999)

    def test_overlaps_two_open_starts(self):
        # Both unbounded below: they always share (-inf, min(ends)).
        assert Interval(None, 5).overlaps(Interval(None, 100))
        assert Interval(None, 5).overlaps(Interval(None, 5))

    def test_overlaps_two_open_ends(self):
        # Both unbounded above: they always share (max(starts), inf).
        assert Interval(5, None).overlaps(Interval(100, None))

    def test_overlaps_open_start_meets_open_end(self):
        # (-inf, 5) vs [5, inf): half-open adjacency is disjoint...
        assert not Interval(None, 5).overlaps(Interval(5, None))
        # ...but one instant of slack suffices.
        assert Interval(None, 6).overlaps(Interval(5, None))

    def test_overlaps_is_symmetric_with_open_bounds(self):
        pairs = [
            (Interval(None, 5), Interval(3, None)),
            (Interval(0, 10), Interval(None, None)),
            (Interval(None, 5), Interval(5, None)),
        ]
        for a, b in pairs:
            assert a.overlaps(b) == b.overlaps(a)

    def test_always_overlaps_everything(self):
        for other in (Interval(0, 1), Interval(None, 0), Interval(0, None),
                      Interval(None, None)):
            assert ALWAYS.overlaps(other)


class TestTemporalMembership:
    @pytest.fixture()
    def membership(self):
        return TemporalMembership.from_records(
            [
                (0, 100, 2000, 2005),
                (0, 101, 2003, None),
                (1, 100, None, 2002),
                (2, 102, None, None),
            ]
        )

    def test_snapshot_filters_by_date(self, membership):
        assert sorted(membership.snapshot(2001)) == [(0, 100), (1, 100), (2, 102)]
        assert sorted(membership.snapshot(2004)) == [(0, 100), (0, 101), (2, 102)]
        assert sorted(membership.snapshot(2010)) == [(0, 101), (2, 102)]

    def test_snapshot_none_returns_all(self, membership):
        assert len(membership.snapshot(None)) == 4

    def test_snapshots_dict(self, membership):
        snaps = membership.snapshots([2001, 2010])
        assert set(snaps) == {2001, 2010}
        assert len(snaps[2001]) == 3

    def test_active_sets(self, membership):
        assert membership.active_individuals(2004) == {0, 2}
        assert membership.active_groups(2004) == {100, 101, 102}

    def test_span(self, membership):
        assert membership.span() == (2000, 2005)

    def test_span_unbounded(self):
        membership = TemporalMembership.from_pairs([(0, 1)])
        assert membership.span() == (None, None)

    def test_from_pairs_untimed(self):
        membership = TemporalMembership.from_pairs([(0, 1), (2, 3)])
        assert membership.snapshot(1234) == [(0, 1), (2, 3)]

    def test_add_and_len(self):
        membership = TemporalMembership()
        membership.add(MembershipEdge(1, 2))
        assert len(membership) == 1
        assert list(membership)[0].individual == 1

    def test_dates_are_sorted_unique_endpoints(self, membership):
        # Intervals: [2000,2005), [2003,None), [None,2002), [None,None).
        assert membership.dates() == [2000, 2002, 2003, 2005]

    def test_dates_ignore_open_bounds(self):
        membership = TemporalMembership.from_pairs([(0, 1), (2, 3)])
        assert membership.dates() == []

    def test_dates_enumerate_every_membership_state(self, membership):
        # The relation only changes at an interval endpoint, so every
        # state observable at any date in the span is witnessed by some
        # endpoint date.
        dates = membership.dates()
        seen = {tuple(sorted(membership.snapshot(d))) for d in dates}
        for d in range(min(dates), max(dates) + 1):
            assert tuple(sorted(membership.snapshot(d))) in seen
