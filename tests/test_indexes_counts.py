"""Tests of the UnitCounts / GroupCountsMatrix containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SegregationIndexError
from repro.indexes.counts import GroupCountsMatrix, UnitCounts

from tests.oracles import unit_counts_bruteforce


class TestUnitCountsValidation:
    def test_minority_cannot_exceed_total(self):
        with pytest.raises(SegregationIndexError, match="exceeds total"):
            UnitCounts([5, 5], [6, 0])

    def test_negative_counts_rejected(self):
        with pytest.raises(SegregationIndexError):
            UnitCounts([5, -1], [0, 0])
        with pytest.raises(SegregationIndexError):
            UnitCounts([5, 5], [-1, 0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SegregationIndexError, match="units"):
            UnitCounts([5, 5, 5], [1, 2])

    def test_two_dimensional_rejected(self):
        with pytest.raises(SegregationIndexError):
            UnitCounts([[1, 2]], [[0, 1]])


class TestUnitCountsDerived:
    def test_aggregates(self):
        counts = UnitCounts([10, 20, 30], [1, 2, 3])
        assert counts.total == 60
        assert counts.minority_total == 6
        assert counts.majority_total == 54
        assert counts.proportion == pytest.approx(0.1)
        assert counts.n_units == 3

    def test_unit_proportions(self):
        counts = UnitCounts([10, 20], [5, 5])
        assert counts.unit_proportions == pytest.approx([0.5, 0.25])

    def test_degenerate_flags(self):
        assert UnitCounts([10], [0]).is_degenerate()
        assert UnitCounts([10], [10]).is_degenerate()
        assert UnitCounts([], []).is_degenerate()
        assert not UnitCounts([10], [5]).is_degenerate()

    def test_complement_swaps_groups(self):
        counts = UnitCounts([10, 20], [3, 7])
        swapped = counts.complement()
        assert swapped.m.tolist() == [7, 13]
        assert swapped.t.tolist() == [10, 20]

    def test_merged_with_concatenates(self):
        a = UnitCounts([10], [2])
        b = UnitCounts([20, 5], [3, 1])
        merged = a.merged_with(b)
        assert merged.n_units == 3
        assert merged.total == 35

    def test_repr_mentions_shape(self):
        text = repr(UnitCounts([10, 20], [3, 7]))
        assert "n_units=2" in text and "T=30" in text


class TestFromAssignments:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        units = rng.integers(0, 7, 200)
        minority = rng.random(200) < 0.3
        fast = UnitCounts.from_assignments(units, minority)
        slow = unit_counts_bruteforce(units, minority)
        assert fast.t.tolist() == slow.t.tolist()
        assert fast.m.tolist() == slow.m.tolist()

    def test_n_units_override_pads(self):
        counts = UnitCounts.from_assignments(
            [0, 0, 2], [True, False, True], n_units=5
        )
        # empty units dropped by default
        assert counts.n_units == 2

    def test_negative_unit_rejected(self):
        with pytest.raises(SegregationIndexError):
            UnitCounts.from_assignments([-1, 0], [True, False])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SegregationIndexError):
            UnitCounts.from_assignments([0, 1], [True])


class TestGroupCountsMatrix:
    def test_basic_aggregates(self):
        matrix = GroupCountsMatrix([[5, 5], [2, 8]])
        assert matrix.n_units == 2
        assert matrix.n_groups == 2
        assert matrix.total == 20
        assert matrix.unit_totals.tolist() == [10, 10]
        assert matrix.group_totals.tolist() == [7, 13]
        assert matrix.group_proportions == pytest.approx([0.35, 0.65])

    def test_binary_view(self):
        matrix = GroupCountsMatrix([[5, 5], [2, 8]])
        counts = matrix.binary(0)
        assert counts.t.tolist() == [10.0, 10.0]
        assert counts.m.tolist() == [5.0, 2.0]

    def test_binary_out_of_range(self):
        matrix = GroupCountsMatrix([[5, 5], [2, 8]])
        with pytest.raises(SegregationIndexError):
            matrix.binary(2)

    def test_one_group_rejected(self):
        with pytest.raises(SegregationIndexError):
            GroupCountsMatrix([[5], [2]])

    def test_negative_rejected(self):
        with pytest.raises(SegregationIndexError):
            GroupCountsMatrix([[5, -1]])

    def test_empty_units_dropped(self):
        matrix = GroupCountsMatrix([[5, 5], [0, 0], [2, 8]])
        assert matrix.n_units == 2
