"""Cover-engine equivalence: every codec yields bit-identical results.

The packed-bitmap :class:`CoverSet` is the default cover representation
end-to-end (ETL encoding → mining → cube).  These tests pin the safety
property the refactor relies on: supports, covers, closures and cube
cells computed through the packed codec (and the EWAH codec) are
*identical* to the dense-boolean reference, including the ``closed``
cube mode and its lazy resolver path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.data.synthetic import random_final_table
from repro.errors import MiningError
from repro.itemsets.coverset import (
    COVER_CODECS,
    CoverSet,
    DenseCover,
    get_codec,
)
from repro.itemsets.eclat import closure_of, mine_eclat, mine_eclat_typed
from repro.itemsets.items import Item, ItemDictionary, ItemKind
from repro.itemsets.transactions import TransactionDatabase, encode_table


def make_db(rows, n_items=None, codec="packed"):
    size = n_items if n_items is not None else (
        max((max(r) for r in rows if r), default=-1) + 1
    )
    dictionary = ItemDictionary()
    for i in range(size):
        dictionary.add(Item("x", i), ItemKind.SA)
    return TransactionDatabase([tuple(r) for r in rows], dictionary,
                               codec=codec)


# ---------------------------------------------------------------------------
# CoverSet unit behaviour
# ---------------------------------------------------------------------------

class TestCoverSet:
    def test_round_trip(self):
        bits = np.array([True, False, True] + [False] * 100 + [True])
        cover = CoverSet.from_bools(bits)
        assert cover.to_bools().tolist() == bits.tolist()
        assert cover.support() == 3
        assert len(cover) == len(bits)

    def test_and_matches_numpy(self):
        rng = np.random.default_rng(5)
        a, b = rng.random(333) < 0.4, rng.random(333) < 0.4
        ca, cb = CoverSet.from_bools(a), CoverSet.from_bools(b)
        assert (ca & cb).to_bools().tolist() == (a & b).tolist()
        assert (ca | cb).to_bools().tolist() == (a | b).tolist()
        assert ca.intersect_support(cb) == int((a & b).sum())

    def test_ones_masks_tail_bits(self):
        for n in (0, 1, 63, 64, 65, 130):
            assert CoverSet.ones(n).support() == n
            assert CoverSet.zeros(n).support() == 0
        assert CoverSet.ones(70).all()

    def test_size_mismatch_rejected(self):
        with pytest.raises(MiningError, match="sizes differ"):
            CoverSet.ones(10) & CoverSet.ones(11)

    def test_from_indices_bounds(self):
        with pytest.raises(MiningError):
            CoverSet.from_indices([10], 5)
        assert CoverSet.from_indices([0, 64], 65).to_indices().tolist() == [0, 64]

    def test_equality(self):
        a = CoverSet.from_indices([1, 2], 100)
        b = CoverSet.from_indices([1, 2], 100)
        assert a == b and hash(a) == hash(b)
        assert a != CoverSet.from_indices([1, 3], 100)

    def test_unknown_codec_rejected(self):
        with pytest.raises(MiningError, match="unknown cover codec"):
            get_codec("roaring")

    def test_dense_cover_parity(self):
        rng = np.random.default_rng(9)
        a = rng.random(200) < 0.3
        dense = DenseCover.from_bools(a)
        packed = CoverSet.from_bools(a)
        assert dense.support() == packed.support()
        assert dense.tolist() == packed.tolist()


# ---------------------------------------------------------------------------
# Property: all codecs agree on mining, closures and supports.
# ---------------------------------------------------------------------------

@st.composite
def random_rows(draw):
    n_items = draw(st.integers(1, 7))
    n_rows = draw(st.integers(1, 40))
    rows = [
        tuple(sorted({
            draw(st.integers(0, n_items - 1))
            for _ in range(draw(st.integers(0, n_items)))
        }))
        for _ in range(n_rows)
    ]
    minsup = draw(st.integers(1, max(1, n_rows // 2)))
    return rows, n_items, minsup


@given(random_rows())
@settings(max_examples=40, deadline=None)
def test_codecs_agree_on_supports_and_covers(rows_items_minsup):
    rows, n_items, minsup = rows_items_minsup
    reference = None
    for codec in COVER_CODECS:
        db = make_db(rows, n_items, codec=codec)
        supports = mine_eclat(db, minsup)
        covers = mine_eclat(db, minsup, with_covers=True)
        materialised = {k: v.tolist() for k, v in covers.items()}
        item_supports = db.item_supports().tolist()
        if reference is None:
            reference = (supports, materialised, item_supports)
        else:
            assert supports == reference[0], codec
            assert materialised == reference[1], codec
            assert item_supports == reference[2], codec


@given(random_rows())
@settings(max_examples=30, deadline=None)
def test_codecs_agree_on_closures(rows_items_minsup):
    rows, n_items, minsup = rows_items_minsup
    closures_by_codec = []
    for codec in COVER_CODECS:
        db = make_db(rows, n_items, codec=codec)
        frequent = mine_eclat(db, minsup, with_covers=True)
        closures_by_codec.append(
            {k: closure_of(db, cover) for k, cover in frequent.items()}
        )
    assert closures_by_codec[0] == closures_by_codec[1] == closures_by_codec[2]


@given(random_rows())
@settings(max_examples=30, deadline=None)
def test_closure_accepts_dense_boolean_arrays(rows_items_minsup):
    """Legacy callers hand dense bool arrays; coercion must be exact."""
    rows, n_items, minsup = rows_items_minsup
    db = make_db(rows, n_items, codec="packed")
    for itemset, cover in mine_eclat(db, minsup, with_covers=True).items():
        dense = np.asarray(cover.to_bools(), dtype=bool)
        assert closure_of(db, dense) == closure_of(db, cover)


# ---------------------------------------------------------------------------
# Property: cube cells identical across codecs, in both modes, through
# the lazy resolver.
# ---------------------------------------------------------------------------

@st.composite
def cube_configs(draw):
    return {
        "n_rows": draw(st.integers(30, 120)),
        "n_units": draw(st.integers(1, 5)),
        "sa_attributes": {"g": draw(st.integers(2, 3))},
        "ca_attributes": {"r": draw(st.integers(2, 3))},
        "multi_valued_ca": (
            {"mv": draw(st.integers(2, 3))} if draw(st.booleans()) else {}
        ),
        "seed": draw(st.integers(0, 5_000)),
    }


LIMITS = {"min_population": 4, "min_minority": 2,
          "max_sa_items": 2, "max_ca_items": 2}


@given(cube_configs())
@settings(max_examples=12, deadline=None)
def test_cube_cells_identical_across_codecs(config):
    table, schema = random_final_table(**config)
    cubes = [
        SegregationDataCubeBuilder(codec=codec, **LIMITS).build(table, schema)
        for codec in COVER_CODECS
    ]
    assert check_same_cells(cubes[0], cubes[1]) == []
    assert check_same_cells(cubes[0], cubes[2]) == []


@given(cube_configs())
@settings(max_examples=8, deadline=None)
def test_closed_mode_and_lazy_resolver_identical_across_codecs(config):
    table, schema = random_final_table(**config)
    full = SegregationDataCubeBuilder(
        mode="all", codec="bool", **LIMITS
    ).build(table, schema)
    for codec in ("packed", "ewah"):
        closed = SegregationDataCubeBuilder(
            mode="closed", codec=codec, **LIMITS
        ).build(table, schema)
        assert len(closed) <= len(full)
        for key in full.keys():
            a = full.cell_by_key(key)
            b = closed.cell_by_key(key)   # materialised or lazily resolved
            assert b is not None, closed.describe(key)
            assert (a.population, a.minority, a.n_units) == (
                b.population, b.minority, b.n_units
            )
            for name in full.metadata.index_names:
                va, vb = a.value(name), b.value(name)
                if va == va or vb == vb:  # skip double-nan
                    assert va == pytest.approx(vb), (name, key)


# ---------------------------------------------------------------------------
# Encoding equivalence: vectorized encoder across codecs.
# ---------------------------------------------------------------------------

@given(cube_configs())
@settings(max_examples=15, deadline=None)
def test_encode_table_identical_across_codecs(config):
    table, schema = random_final_table(**config)
    dbs = [encode_table(table, schema, codec=c) for c in COVER_CODECS]
    assert dbs[0].rows == dbs[1].rows == dbs[2].rows
    assert all(db.units.tolist() == dbs[0].units.tolist() for db in dbs)
    for db in dbs:
        # The vertical layout must agree with the horizontal rows.
        for i, cover in db.covers().items():
            expected = [i in row for row in db.rows]
            assert cover.tolist() == expected


@given(cube_configs())
@settings(max_examples=10, deadline=None)
def test_typed_mine_identical_across_codecs(config):
    table, schema = random_final_table(**config)
    results = []
    for codec in COVER_CODECS:
        db = encode_table(table, schema, codec=codec)
        out = mine_eclat_typed(
            db, 2, sa_ids=db.dictionary.sa_ids, ca_ids=db.dictionary.ca_ids,
            max_sa=2, max_ca=2,
        )
        results.append({k: v.tolist() for k, v in out.items()})
    assert results[0] == results[1] == results[2]
