"""Tests of the SegregationDataCubeBuilder semantics."""

from __future__ import annotations

import math

import pytest

from repro.cube.builder import SegregationDataCubeBuilder, build_cube
from repro.data.synthetic import planted_table
from repro.errors import CubeError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.indexes.binary import dissimilarity, gini


@pytest.fixture()
def fig1_style_table():
    """A table shaped like the paper's Fig. 1 axes: sex, age | region."""
    rows = []
    # Region north: women concentrated in unit 0, men in unit 1.
    rows += [("F", "young", "north", 0)] * 8 + [("F", "young", "north", 1)] * 2
    rows += [("M", "young", "north", 0)] * 2 + [("M", "young", "north", 1)] * 8
    rows += [("F", "elder", "north", 0)] * 5 + [("F", "elder", "north", 1)] * 5
    rows += [("M", "elder", "north", 0)] * 5 + [("M", "elder", "north", 1)] * 5
    # Region south: everything even.
    rows += [("F", "young", "south", 2)] * 5 + [("F", "young", "south", 3)] * 5
    rows += [("M", "young", "south", 2)] * 5 + [("M", "young", "south", 3)] * 5
    table = Table.from_rows(["sex", "age", "region", "unitID"], rows)
    schema = Schema.build(
        segregation=["sex", "age"], context=["region"], unit="unitID"
    )
    return table, schema


class TestBuildSemantics:
    def test_global_cell_matches_direct_computation(self, fig1_style_table):
        table, schema = fig1_style_table
        cube = build_cube(table, schema, min_population=1, min_minority=1)
        cell = cube.cell(sa={"sex": "F"})
        from repro.indexes.counts import UnitCounts

        units = table.ints("unitID").data
        minority = table.categorical("sex").mask_eq("F")
        counts = UnitCounts.from_assignments(units, minority)
        assert cell.value("D") == pytest.approx(dissimilarity(counts))
        assert cell.value("G") == pytest.approx(gini(counts))
        assert cell.population == len(table)
        assert cell.minority == int(minority.sum())

    def test_context_restricts_population_and_units(self, fig1_style_table):
        table, schema = fig1_style_table
        cube = build_cube(table, schema, min_population=1, min_minority=1)
        north = cube.cell(sa={"sex": "F"}, ca={"region": "north"})
        assert north.population == 40
        assert north.n_units == 2          # units 0 and 1 only
        south = cube.cell(sa={"sex": "F"}, ca={"region": "south"})
        assert south.value("D") == pytest.approx(0.0)
        # North: F = [13, 7] over t = [20, 20] -> D = 0.3 exactly.
        assert north.value("D") == pytest.approx(0.3)

    def test_finer_sa_cell(self, fig1_style_table):
        table, schema = fig1_style_table
        cube = build_cube(table, schema, min_population=1, min_minority=1)
        cell = cube.cell(sa={"sex": "F", "age": "young"},
                         ca={"region": "north"})
        # 8 young women in unit 0, 2 in unit 1; totals 20/20.
        assert cell.minority == 10
        assert cell.value("D") == pytest.approx(
            0.5 * (abs(8 / 10 - 12 / 30) + abs(2 / 10 - 18 / 30))
        )

    def test_min_minority_prunes_cells(self, fig1_style_table):
        table, schema = fig1_style_table
        cube = build_cube(table, schema, min_population=1, min_minority=11)
        assert cube.cell(sa={"sex": "F", "age": "young"},
                         ca={"region": "north"}) is None
        assert cube.cell(sa={"sex": "F"}) is not None

    def test_min_population_prunes_contexts(self, fig1_style_table):
        table, schema = fig1_style_table
        cube = build_cube(table, schema, min_population=41, min_minority=1)
        assert cube.cell(sa={"sex": "F"}, ca={"region": "north"}) is None
        assert cube.cell(sa={"sex": "F"}) is not None

    def test_context_only_cells_have_nan_indexes(self, fig1_style_table):
        table, schema = fig1_style_table
        cube = build_cube(table, schema, min_population=1, min_minority=1)
        cell = cube.cell(ca={"region": "north"})
        assert cell.is_context_only
        assert math.isnan(cell.value("D"))
        assert cell.population == 40

    def test_index_subset_selection(self, fig1_style_table):
        table, schema = fig1_style_table
        cube = build_cube(table, schema, indexes=["D", "Iso"],
                          min_population=1, min_minority=1)
        cell = cube.cell(sa={"sex": "F"})
        assert set(cube.metadata.index_names) == {"D", "Iso"}
        assert math.isnan(cell.value("G"))

    def test_max_item_caps(self, fig1_style_table):
        table, schema = fig1_style_table
        cube = build_cube(table, schema, min_population=1, min_minority=1,
                          max_sa_items=1)
        from repro.cube.coordinates import encode_query

        deep_key = encode_query(
            cube.dictionary, sa={"sex": "F", "age": "young"}
        )
        shallow_key = encode_query(cube.dictionary, sa={"sex": "F"})
        # Beyond the cap the cell is not materialised ...
        assert deep_key not in cube
        assert shallow_key in cube
        # ... but a point query is still answered exactly by the resolver.
        resolved = cube.cell(sa={"sex": "F", "age": "young"})
        assert resolved is not None
        assert resolved.minority == 20

    def test_planted_ground_truth(self):
        planted = planted_table([50, 50, 50], [0.9, 0.3, 0.1])
        cube = build_cube(planted.table, planted.schema,
                          min_population=1, min_minority=1)
        cell = cube.cell(sa={"gender": "F"})
        assert cell.value("D") == pytest.approx(dissimilarity(planted.counts))
        assert cell.value("G") == pytest.approx(gini(planted.counts))


class TestBuilderValidation:
    def test_no_sa_rejected(self):
        table = Table.from_dict({"region": ["a"], "unitID": [0]})
        schema = Schema.build(context=["region"], unit="unitID")
        with pytest.raises(CubeError, match="no segregation attributes"):
            build_cube(table, schema)

    def test_no_unit_rejected(self):
        table = Table.from_dict({"sex": ["F"]})
        schema = Schema.build(segregation=["sex"])
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            build_cube(table, schema)

    def test_empty_table_rejected(self):
        from repro.etl.table import CategoricalColumn, IntColumn

        table = Table(
            {
                "sex": CategoricalColumn([], []),
                "unitID": IntColumn([]),
            }
        )
        schema = Schema.build(segregation=["sex"], unit="unitID")
        with pytest.raises(CubeError, match="empty"):
            build_cube(table, schema)

    def test_bad_mode_rejected(self):
        with pytest.raises(CubeError, match="mode"):
            SegregationDataCubeBuilder(mode="bogus")

    def test_metadata_populated(self, fig1_style_table):
        table, schema = fig1_style_table
        cube = build_cube(table, schema, min_population=5, min_minority=2)
        md = cube.metadata
        assert md.n_rows == len(table)
        assert md.n_units == 4
        assert md.min_population == 5
        assert md.min_minority == 2
        assert md.build_seconds >= 0
        assert md.mode == "all"
