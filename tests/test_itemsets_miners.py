"""Cross-validation of the three miners against brute force and each other."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MiningError
from repro.itemsets.apriori import mine_apriori
from repro.itemsets.eclat import mine_eclat
from repro.itemsets.fpgrowth import mine_fpgrowth
from repro.itemsets.items import Item, ItemDictionary, ItemKind
from repro.itemsets.miner import BACKENDS, absolute_minsup, mine
from repro.itemsets.transactions import TransactionDatabase

from tests.oracles import frequent_itemsets_bruteforce


def make_db(rows, n_items=None):
    """Build a TransactionDatabase from raw integer rows."""
    size = n_items if n_items is not None else (
        max((max(r) for r in rows if r), default=-1) + 1
    )
    dictionary = ItemDictionary()
    for i in range(size):
        dictionary.add(Item("x", i), ItemKind.SA)
    return TransactionDatabase([tuple(r) for r in rows], dictionary)


CLASSIC_DB = [
    (0, 1, 2),
    (0, 1),
    (0, 2),
    (0,),
    (1, 2),
    (1,),
    (2,),
    (0, 1, 2),
]


class TestClassicExample:
    """Support counts verified by hand on an 8-transaction database."""

    @pytest.mark.parametrize("miner", [mine_apriori, mine_eclat, mine_fpgrowth])
    def test_supports(self, miner):
        db = make_db(CLASSIC_DB)
        result = miner(db, 2)
        assert result[frozenset({0})] == 5
        assert result[frozenset({1})] == 5
        assert result[frozenset({2})] == 5
        assert result[frozenset({0, 1})] == 3
        assert result[frozenset({0, 2})] == 3
        assert result[frozenset({1, 2})] == 3
        assert result[frozenset({0, 1, 2})] == 2

    @pytest.mark.parametrize("miner", [mine_apriori, mine_eclat, mine_fpgrowth])
    def test_minsup_prunes(self, miner):
        db = make_db(CLASSIC_DB)
        result = miner(db, 3)
        assert frozenset({0, 1, 2}) not in result
        assert frozenset({0, 1}) in result

    @pytest.mark.parametrize("miner", [mine_apriori, mine_eclat, mine_fpgrowth])
    def test_max_len(self, miner):
        db = make_db(CLASSIC_DB)
        result = miner(db, 1, max_len=1)
        assert all(len(k) == 1 for k in result)

    @pytest.mark.parametrize("miner", [mine_apriori, mine_eclat, mine_fpgrowth])
    def test_item_restriction(self, miner):
        db = make_db(CLASSIC_DB)
        result = miner(db, 1, items=[0, 1])
        assert all(k <= frozenset({0, 1}) for k in result)

    @pytest.mark.parametrize("miner", [mine_apriori, mine_eclat, mine_fpgrowth])
    def test_minsup_validation(self, miner):
        db = make_db(CLASSIC_DB)
        with pytest.raises(MiningError):
            miner(db, 0)


class TestEclatCovers:
    def test_covers_match_supports(self):
        db = make_db(CLASSIC_DB)
        covers = mine_eclat(db, 2, with_covers=True)
        supports = mine_eclat(db, 2)
        assert set(covers) == set(supports)
        for itemset, cover in covers.items():
            assert int(cover.sum()) == supports[itemset]

    def test_cover_contents(self):
        db = make_db(CLASSIC_DB)
        covers = mine_eclat(db, 2, with_covers=True)
        expected = np.zeros(len(CLASSIC_DB), dtype=bool)
        for t, row in enumerate(CLASSIC_DB):
            if 0 in row and 1 in row:
                expected[t] = True
        assert covers[frozenset({0, 1})].tolist() == expected.tolist()


# ---------------------------------------------------------------------------
# Property: all miners == brute force on random small databases.
# ---------------------------------------------------------------------------

@st.composite
def random_dbs(draw):
    n_items = draw(st.integers(1, 7))
    n_rows = draw(st.integers(1, 30))
    rows = [
        tuple(
            sorted(
                {
                    draw(st.integers(0, n_items - 1))
                    for _ in range(draw(st.integers(0, n_items)))
                }
            )
        )
        for _ in range(n_rows)
    ]
    minsup = draw(st.integers(1, max(1, n_rows // 2)))
    return make_db(rows, n_items), minsup


@given(random_dbs())
@settings(max_examples=60, deadline=None)
def test_all_miners_match_bruteforce(db_minsup):
    db, minsup = db_minsup
    expected = frequent_itemsets_bruteforce(db, minsup)
    assert mine_apriori(db, minsup) == expected
    assert mine_eclat(db, minsup) == expected
    assert mine_fpgrowth(db, minsup) == expected


@given(random_dbs(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_miners_agree_under_max_len(db_minsup, max_len):
    db, minsup = db_minsup
    expected = frequent_itemsets_bruteforce(db, minsup, max_len=max_len)
    assert mine_apriori(db, minsup, max_len=max_len) == expected
    assert mine_eclat(db, minsup, max_len=max_len) == expected
    assert mine_fpgrowth(db, minsup, max_len=max_len) == expected


class TestMineFacade:
    def test_backend_selection(self):
        db = make_db(CLASSIC_DB)
        results = [mine(db, 2, backend=b).supports for b in BACKENDS]
        assert results[0] == results[1] == results[2]

    def test_relative_minsup(self):
        db = make_db(CLASSIC_DB)
        result = mine(db, 0.25)         # 25% of 8 rows -> 2
        assert result.minsup == 2

    def test_unknown_backend(self):
        db = make_db(CLASSIC_DB)
        with pytest.raises(MiningError, match="unknown backend"):
            mine(db, 2, backend="magic")

    def test_with_covers_forces_eclat(self):
        db = make_db(CLASSIC_DB)
        result = mine(db, 2, backend="apriori", with_covers=True)
        assert result.backend == "eclat"
        assert result.covers is not None

    def test_result_helpers(self):
        db = make_db(CLASSIC_DB)
        result = mine(db, 2)
        assert result.support({0}) == 5
        assert result.support({0, 1, 2}) == 2
        assert result.support({5}) == 0
        assert len(result.itemsets_of_size(2)) == 3
        assert len(result) == 7

    def test_absolute_minsup_validation(self):
        assert absolute_minsup(0.5, 10) == 5
        assert absolute_minsup(0.01, 10) == 1
        assert absolute_minsup(3, 10) == 3
        assert absolute_minsup(3.0, 10) == 3    # integral float is fine
        with pytest.raises(MiningError):
            absolute_minsup(0.0, 10)
        with pytest.raises(MiningError):
            absolute_minsup(-1, 10)
        with pytest.raises(MiningError):
            absolute_minsup(2.5, 10)

    def test_absolute_minsup_non_integer_float_message(self):
        """Floats >= 1 with a fractional part get the dedicated message."""
        with pytest.raises(MiningError, match="non-integer float"):
            absolute_minsup(2.5, 10)
        with pytest.raises(MiningError, match="whole counts"):
            absolute_minsup(1.0001, 10)

    def test_absolute_minsup_out_of_range_message(self):
        """Non-positive and boundary values keep the generic message."""
        for bad in (0.0, -1, -0.5, 0, 1.0 - 1.0):
            with pytest.raises(MiningError,
                               match=r"fraction in \(0,1\) or an integer"):
                absolute_minsup(bad, 10)
