"""Tests of numeric discretisation and the paper's age bins."""

from __future__ import annotations

import pytest

from repro.errors import TableError
from repro.etl.discretize import (
    PAPER_AGE_EDGES,
    bin_labels,
    discretize,
    equal_width_edges,
    paper_age_column,
    quantile_edges,
)


class TestBinLabels:
    def test_paper_style_integer_labels(self):
        labels = bin_labels([15, 39, 47], open_ended=True)
        assert labels == ["15-38", "39-46", "47+"]

    def test_closed_labels(self):
        labels = bin_labels([0, 10, 20], open_ended=False)
        assert labels == ["0-9", "10-19"]

    def test_float_labels(self):
        labels = bin_labels([0.5, 1.5], open_ended=False)
        assert labels == ["0.5-1.5"]

    def test_too_few_edges(self):
        with pytest.raises(TableError):
            bin_labels([1])


class TestDiscretize:
    def test_assigns_expected_bins(self):
        col = discretize([20, 40, 50, 60, 70], PAPER_AGE_EDGES)
        assert col.values() == ["15-38", "39-46", "47-54", "55-65", "66+"]

    def test_boundaries_are_left_closed(self):
        col = discretize([39, 46, 47], PAPER_AGE_EDGES)
        assert col.values() == ["39-46", "39-46", "47-54"]

    def test_below_range_clamped_to_first(self):
        col = discretize([3], PAPER_AGE_EDGES)
        assert col.values() == ["15-38"]

    def test_closed_top_bin_clamps(self):
        col = discretize([100], [0, 10, 20], open_ended=False)
        assert col.values() == ["10-19"]

    def test_paper_age_column_shortcut(self):
        assert paper_age_column([30]).values() == ["15-38"]


class TestEdgeComputation:
    def test_equal_width_spans_range(self):
        edges = equal_width_edges([0, 10], 5)
        assert edges[0] == 0 and edges[-1] == 10
        assert len(edges) == 6

    def test_equal_width_constant_data(self):
        edges = equal_width_edges([5, 5], 2)
        assert edges[0] < edges[-1]

    def test_quantile_edges_balanced(self):
        values = list(range(100))
        edges = quantile_edges(values, 4)
        assert edges[0] == 0 and edges[-1] == 99

    def test_quantile_duplicates_collapsed(self):
        edges = quantile_edges([1, 1, 1, 1], 4)
        assert len(edges) >= 2

    def test_invalid_inputs(self):
        with pytest.raises(TableError):
            equal_width_edges([], 3)
        with pytest.raises(TableError):
            equal_width_edges([1], 0)
        with pytest.raises(TableError):
            quantile_edges([], 3)
