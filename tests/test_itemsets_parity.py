"""fpgrowth-vs-eclat parity: identical frequent sets on richer inputs.

The miners are cross-validated against brute force elsewhere
(``test_itemsets_miners``), but only on databases small enough to
enumerate the powerset.  Here the two tree/cover miners check *each
other* on larger, denser, hypothesis-generated databases — more items,
more rows, every codec, restricted item universes and length caps —
where brute force is unaffordable but mutual agreement still pins both
implementations down (a drift in either shows up as a diff).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.itemsets.eclat import mine_eclat
from repro.itemsets.fpgrowth import mine_fpgrowth
from repro.itemsets.items import Item, ItemDictionary, ItemKind
from repro.itemsets.transactions import TransactionDatabase

CODECS = ["packed", "bool", "ewah"]


def build_db(rows, n_items, codec):
    dictionary = ItemDictionary()
    for i in range(n_items):
        dictionary.add(Item("x", i), ItemKind.SA)
    return TransactionDatabase(
        [tuple(r) for r in rows], dictionary, codec=codec
    )


@st.composite
def parity_cases(draw):
    n_items = draw(st.integers(4, 14))
    n_rows = draw(st.integers(10, 120))
    seed = draw(st.integers(0, 2**32 - 1))
    density = draw(st.floats(0.1, 0.6))
    rng = np.random.default_rng(seed)
    rows = [
        tuple(sorted(np.flatnonzero(rng.random(n_items) < density)))
        for _ in range(n_rows)
    ]
    minsup = draw(st.integers(1, max(1, n_rows // 3)))
    codec = draw(st.sampled_from(CODECS))
    return build_db(rows, n_items, codec), minsup


@given(parity_cases())
@settings(max_examples=50, deadline=None)
def test_fpgrowth_matches_eclat(case):
    db, minsup = case
    assert mine_fpgrowth(db, minsup) == mine_eclat(db, minsup)


@given(parity_cases(), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_fpgrowth_matches_eclat_under_max_len(case, max_len):
    db, minsup = case
    assert (
        mine_fpgrowth(db, minsup, max_len=max_len)
        == mine_eclat(db, minsup, max_len=max_len)
    )


@given(parity_cases())
@settings(max_examples=30, deadline=None)
def test_fpgrowth_matches_eclat_on_item_subset(case):
    db, minsup = case
    items = list(range(0, len(db.dictionary), 2))
    assert (
        mine_fpgrowth(db, minsup, items=items)
        == mine_eclat(db, minsup, items=items)
    )


@given(parity_cases())
@settings(max_examples=20, deadline=None)
def test_parallel_eclat_matches_fpgrowth(case):
    """Transitivity check: the workers= path agrees with fpgrowth too."""
    db, minsup = case
    assert mine_fpgrowth(db, minsup) == dict(mine_eclat(db, minsup, workers=2))
