"""Tests of ShardedCubeService: parity with the unsharded service.

The router's contract is *exactness*, not approximation: every query
answered over the shards — top-k rank for rank, slice/children/parents
cell for cell, point values, pivots, per-date trends — must equal the
unsharded CubeService's answer at atol=0, for every sharding scheme.
The concurrency test mirrors the CubeService one: a thread pool
hammers a cold router and every answer must match the single-threaded
reference.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cube.builder import SegregationDataCubeBuilder, build_cube
from repro.cube.incremental import TemporalCubeEngine
from repro.data.synthetic import random_temporal_final_table
from repro.errors import SnapshotError
from repro.etl.diff import valid_at
from repro.itemsets.transactions import encode_table
from repro.serve.router import ShardedCubeService, open_service
from repro.serve.service import CubeService
from repro.store import dump_snapshot
from repro.store.shards import (
    dump_sharded_into_timeline,
    dump_sharded_snapshot,
    shard_timeline_by_date,
)
from repro.store.timeline import dump_into_timeline


@pytest.fixture(scope="module")
def built(schools):
    table, schema = schools
    return build_cube(table, schema, min_population=10, min_minority=3)


@pytest.fixture(scope="module")
def reference(built, tmp_path_factory):
    path = tmp_path_factory.mktemp("router") / "snap"
    dump_snapshot(built, path)
    return CubeService(path)


@pytest.fixture(scope="module", params=["hash", "attribute:city"])
def sharded(built, reference, tmp_path_factory, request):
    path = tmp_path_factory.mktemp("router") / f"sharded-{request.param[:4]}"
    dump_sharded_snapshot(built, path, by=request.param, n_shards=3)
    return ShardedCubeService(path)


@pytest.fixture(scope="module")
def temporal(tmp_path_factory):
    """Three dated cubes dumped both as a plain timeline and as a
    hash-sharded timeline (deltas inside each shard)."""
    dates = (0, 1, 2)
    limits = {"min_population": 10, "min_minority": 3,
              "max_sa_items": 2, "max_ca_items": 2}
    table, schema, starts, ends = random_temporal_final_table(
        n_rows=2500, n_units=10, dates=dates,
        sa_attributes={"g": 2}, ca_attributes={"r": 3, "s": 3},
        seed=7, skew=0.5,
    )
    db = encode_table(table, schema)
    engine = TemporalCubeEngine(
        db, SegregationDataCubeBuilder(engine="incremental", **limits)
    )
    states = engine.run([(d, valid_at(starts, ends, d)) for d in dates])
    root = tmp_path_factory.mktemp("temporal")
    previous = None
    for state in states:
        parent = None if previous is None else previous.date
        dump_into_timeline(
            root / "plain", state.date, state.cube, parent_date=parent,
            parent=None if previous is None else previous.cube,
        )
        dump_sharded_into_timeline(
            root / "sharded", state.date, state.cube,
            by="hash", n_shards=3, parent_date=parent,
        )
        previous = state
    return root


def _same_value(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


class TestShardedParity:
    def test_open_service_detects_shards(self, sharded, reference):
        opened = open_service(sharded.root)
        assert isinstance(opened, ShardedCubeService)
        assert isinstance(
            open_service(reference.cube.metadata.extra["snapshot"]["path"]),
            CubeService,
        )

    def test_top_is_bit_exact(self, sharded, reference):
        for k in (1, 5, 10, 100):
            ours = sharded.top("D", k=k, min_minority=5)
            theirs = reference.top("D", k=k, min_minority=5)
            assert [
                (f.rank, f.description, f.value, f.population, f.minority)
                for f in ours
            ] == [
                (f.rank, f.description, f.value, f.population, f.minority)
                for f in theirs
            ]

    def test_point_queries_route_to_owner(self, sharded, reference):
        for sa, ca in [
            (None, None),
            ({"ethnicity": "minority"}, None),
            ({"ethnicity": "minority"}, {"city": "Rivertown"}),
            (None, {"city": "Lakeside"}),
        ]:
            assert _same_value(
                sharded.value("D", sa=sa, ca=ca),
                reference.value("D", sa=sa, ca=ca),
            )
            ours = sharded.cell(sa=sa, ca=ca)
            theirs = reference.cell(sa=sa, ca=ca)
            assert (ours is None) == (theirs is None)
            if ours is not None:
                assert ours.key == theirs.key
                assert ours.population == theirs.population

    def test_absent_cell_is_none_everywhere(self, sharded, reference):
        # Both values exist in the vocabulary but no school is in two
        # cities: the cell is absent, not an error.
        ca = {"city": ["Rivertown", "Lakeside"]}
        assert reference.cell(ca=ca) is None
        assert sharded.cell(ca=ca) is None
        assert math.isnan(sharded.value("D", ca=ca))

    def test_scans_merge_without_duplicates(self, sharded, reference):
        for query in ("slice", "children", "parents"):
            for coords in (
                {},
                {"sa": {"ethnicity": "minority"}},
                {"ca": {"city": "Rivertown"}},
                {"sa": {"ethnicity": "minority"},
                 "ca": {"city": "Rivertown"}},
            ):
                ours = getattr(sharded, query)(**coords)
                theirs = getattr(reference, query)(**coords)
                assert sorted(
                    (s.depth(), sharded.describe(s.key)) for s in ours
                ) == sorted(
                    (s.depth(), reference.describe(s.key)) for s in theirs
                ), f"{query} {coords} diverged"
                assert len({s.key for s in ours}) == len(ours)

    def test_pivot_is_bit_exact(self, sharded, reference):
        assert (
            sharded.pivot("D", "ethnicity", "city")
            == reference.pivot("D", "ethnicity", "city")
        )
        rows, cols, ours = sharded.pivot_values("D", "ethnicity", "city")
        rrows, rcols, theirs = reference.pivot_values(
            "D", "ethnicity", "city"
        )
        assert (rows, cols) == (rrows, rcols)
        for line, rline in zip(ours, theirs):
            assert all(_same_value(a, b) for a, b in zip(line, rline))

    def test_info_aggregates_across_shards(self, sharded, reference):
        info = sharded.info()
        ref = reference.info()
        assert info["cells"] == ref["cells"]
        assert info["context_only_cells"] == ref["context_only_cells"]
        assert info["defined_cells_per_index"] == (
            ref["defined_cells_per_index"]
        )
        assert info["n_shards"] == sharded.n_shards
        assert set(info["shards"]) == set(sharded.shard_keys)
        assert all(
            "disk" in shard for shard in info["shards"].values()
        )

    def test_concurrent_readers_agree_with_reference(self, sharded):
        """Mirror of the CubeService thread-pool test over the router."""
        expected = {
            "top": [
                (f.rank, f.description, f.value)
                for f in sharded.top("D", k=5, min_minority=5)
            ],
            "slice": [
                s.key for s in sharded.slice(ca={"city": "Rivertown"})
            ],
            "value": sharded.value("D", sa={"ethnicity": "minority"}),
            "pivot": sharded.pivot("D", "ethnicity", "city"),
            "children": {s.key for s in sharded.children()},
        }
        # A fresh, cold router: per-shard lazy state unbuilt.
        service = ShardedCubeService(sharded.root)

        def worker(i: int):
            kind = ("top", "slice", "value", "pivot", "children")[i % 5]
            if kind == "top":
                return kind, [
                    (f.rank, f.description, f.value)
                    for f in service.top("D", k=5, min_minority=5)
                ]
            if kind == "slice":
                return kind, [
                    s.key for s in service.slice(ca={"city": "Rivertown"})
                ]
            if kind == "value":
                return kind, service.value("D", sa={"ethnicity": "minority"})
            if kind == "pivot":
                return kind, service.pivot("D", "ethnicity", "city")
            return kind, {s.key for s in service.children()}

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(200)))
        assert len(results) == 200
        for kind, got in results:
            assert got == expected[kind], f"{kind} diverged under threads"


class TestTemporalSharding:
    def test_trend_coalesces_across_hash_shards(self, temporal):
        plain = CubeService(temporal / "plain")
        sharded = ShardedCubeService(temporal / "sharded")
        for sa in (None, {"g": "g0"}):
            ours = sharded.trend("D", sa=sa)
            theirs = plain.trend("D", sa=sa)
            assert [d for d, _ in ours] == [d for d, _ in theirs]
            assert all(
                _same_value(a, b)
                for (_, a), (_, b) in zip(ours, theirs)
            )

    def test_every_date_routable(self, temporal):
        sharded = ShardedCubeService(temporal / "sharded")
        assert sharded.dates() == [0, 1, 2]
        assert sharded.date == 2
        for date in (0, 1, 2):
            at = ShardedCubeService(temporal / "sharded", date=date)
            ref = CubeService(temporal / "plain", date=date)
            assert [
                (f.rank, f.description, f.value) for f in at.top("D", k=5)
            ] == [
                (f.rank, f.description, f.value) for f in ref.top("D", k=5)
            ]

    def test_date_sharded_timeline(self, temporal):
        shard_timeline_by_date(temporal / "plain")
        bydate = open_service(temporal / "plain")
        assert isinstance(bydate, ShardedCubeService)
        assert bydate.sharded_by == "date"
        plain = CubeService(temporal / "plain" / "2")
        assert [
            (f.rank, f.description, f.value) for f in bydate.top("D", k=5)
        ] == [
            (f.rank, f.description, f.value) for f in plain.top("D", k=5)
        ]
        reference = [
            (0, CubeService(temporal / "plain" / "0").value("D",
                                                            sa={"g": "g0"})),
        ]
        trend = bydate.trend("D", sa={"g": "g0"})
        assert [d for d, _ in trend] == [0, 1, 2]
        assert _same_value(trend[0][1], reference[0][1])
        with pytest.raises(SnapshotError, match="no shard for date"):
            ShardedCubeService(temporal / "plain", date=99)

    def test_refreshed_after_publish(self, temporal, tmp_path):
        import shutil

        root = tmp_path / "grow"
        shutil.copytree(temporal / "sharded", root)
        service = ShardedCubeService(root)
        assert service.refreshed() is None
        # Publish date 3: re-dump the latest cube one date forward.
        latest = ShardedCubeService(root)
        cube2 = CubeService(temporal / "plain").cube
        dump_sharded_into_timeline(
            root, 3, cube2, by="hash", n_shards=3, parent_date=2,
        )
        fresh = service.refreshed()
        assert fresh is not None and fresh.date == 3
        assert service.date == 2  # the old instance never mutates
        assert latest.refreshed() is not None
