"""Tests of clustering quality metrics (modularity vs networkx)."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.attributes import NodeAttributeTable
from repro.graph.components import Clustering, connected_components
from repro.graph.graph import Graph
from repro.graph.metrics import (
    attribute_homogeneity,
    conductance,
    mean_conductance,
    modularity,
    summarize,
)

from tests.test_graph_clustering import to_networkx


def nx_modularity(graph: Graph, clustering: Clustering) -> float:
    communities = [
        set(clustering.members(c).tolist())
        for c in range(clustering.n_clusters)
        if len(clustering.members(c))
    ]
    return nx.algorithms.community.modularity(
        to_networkx(graph), communities, weight="weight"
    )


class TestModularity:
    def test_two_cliques_high_modularity(self):
        g = Graph(6)
        for block in (range(0, 3), range(3, 6)):
            nodes = list(block)
            for i, u in enumerate(nodes):
                for v in nodes[i + 1:]:
                    g.add_edge(u, v, 1.0)
        g.add_edge(2, 3, 1.0)
        clustering = Clustering(np.array([0, 0, 0, 1, 1, 1]), 2, "manual")
        assert modularity(g, clustering) == pytest.approx(
            nx_modularity(g, clustering)
        )
        assert modularity(g, clustering) > 0.3

    def test_single_cluster_zero_or_negative(self):
        g = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        clustering = Clustering(np.zeros(4, dtype=np.int64), 1, "all")
        assert modularity(g, clustering) == pytest.approx(0.0, abs=1e-12)

    def test_edgeless_graph(self):
        g = Graph(3)
        clustering = connected_components(g)
        assert modularity(g, clustering) == 0.0

    @given(
        st.integers(2, 15),
        st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14),
                           st.integers(1, 4)), min_size=1, max_size=40),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_on_random_graphs(self, n, raw_edges, k):
        g = Graph(n)
        for u, v, w in raw_edges:
            u, v = u % n, v % n
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v, float(w))
        if g.n_edges == 0:
            return
        rng = np.random.default_rng(0)
        labels = rng.integers(0, k, n)
        clustering = Clustering(labels.astype(np.int64), k, "random")
        assert modularity(g, clustering) == pytest.approx(
            nx_modularity(g, clustering), abs=1e-9
        )


class TestConductance:
    def test_isolated_cluster_zero(self):
        g = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        clustering = connected_components(g)
        assert conductance(g, clustering, 0) == pytest.approx(0.0)

    def test_cut_cluster(self):
        g = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        clustering = Clustering(np.array([0, 0, 1, 1]), 2, "manual")
        # cut = 1; vol(cluster0) = 1 + 2 = 3; total vol = 6 -> phi = 1/3
        assert conductance(g, clustering, 0) == pytest.approx(1 / 3)

    def test_empty_volume_is_nan(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        clustering = Clustering(np.array([0, 0, 1]), 2, "manual")
        assert math.isnan(conductance(g, clustering, 1))

    def test_mean_conductance_skips_nan(self):
        # Clusters {0,1} and {2,3} have conductance 0; the isolated node 4
        # has zero volume (nan) and must not poison the mean.
        g = Graph.from_edges(5, [(0, 1, 1.0), (2, 3, 1.0)])
        clustering = Clustering(np.array([0, 0, 1, 1, 2]), 3, "manual")
        assert mean_conductance(g, clustering) == pytest.approx(0.0)


class TestHomogeneity:
    def test_pure_clusters_zero_entropy(self):
        attrs = NodeAttributeTable.from_columns(
            4, {"color": ["r", "r", "b", "b"]}
        )
        clustering = Clustering(np.array([0, 0, 1, 1]), 2, "manual")
        assert attribute_homogeneity(attrs, clustering) == pytest.approx(0.0)

    def test_mixed_clusters_positive_entropy(self):
        attrs = NodeAttributeTable.from_columns(
            4, {"color": ["r", "b", "r", "b"]}
        )
        clustering = Clustering(np.array([0, 0, 1, 1]), 2, "manual")
        assert attribute_homogeneity(attrs, clustering) == pytest.approx(1.0)

    def test_no_attributes(self):
        attrs = NodeAttributeTable(4)
        clustering = Clustering(np.zeros(4, dtype=np.int64), 1, "m")
        assert attribute_homogeneity(attrs, clustering) == 0.0


class TestSummarize:
    def test_summary_fields(self):
        g = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        clustering = connected_components(g)
        attrs = NodeAttributeTable.from_columns(
            4, {"color": ["r", "r", "b", "b"]}
        )
        summary = summarize(g, clustering, attrs)
        assert summary.n_clusters == 2
        assert summary.giant_size == 2
        assert summary.homogeneity == pytest.approx(0.0)
        assert summary.method == "connected-components"

    def test_summary_without_attributes(self):
        g = Graph.from_edges(2, [(0, 1, 1.0)])
        summary = summarize(g, connected_components(g))
        assert math.isnan(summary.homogeneity)
