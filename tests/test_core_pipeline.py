"""Tests of configuration and the five-module pipeline."""

from __future__ import annotations

import pytest

from repro.core.config import (
    ClusteringConfig,
    CubeConfig,
    PipelineConfig,
    ProjectionConfig,
)
from repro.core.pipeline import (
    SCubePipeline,
    cube_workbook,
    group_attribute_table,
)
from repro.errors import ConfigError


class TestConfigs:
    def test_defaults_valid(self):
        config = PipelineConfig()
        assert config.clustering.method == "threshold"
        assert config.cube.mode == "all"

    def test_invalid_clustering_method(self):
        with pytest.raises(ConfigError):
            ClusteringConfig(method="bogus")

    def test_invalid_projection(self):
        with pytest.raises(ConfigError):
            ProjectionConfig(min_shared=0)
        with pytest.raises(ConfigError):
            ProjectionConfig(max_degree=0)

    def test_invalid_cube_mode(self):
        with pytest.raises(ConfigError):
            CubeConfig(mode="bogus")


class TestPipelineSteps:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return SCubePipeline(
            PipelineConfig(
                clustering=ClusteringConfig(method="threshold", min_weight=2.0),
                cube=CubeConfig(min_population=10, min_minority=3,
                                max_sa_items=2, max_ca_items=1),
            )
        )

    def test_graph_builder(self, pipeline, italy_small):
        projection = pipeline.build_graph(italy_small)
        assert projection.graph.n_nodes == italy_small.n_groups
        assert projection.graph.n_edges > 0

    def test_clustering_step(self, pipeline, italy_small):
        projection = pipeline.build_graph(italy_small)
        clustering = pipeline.cluster(italy_small, projection)
        assert clustering.n_clusters > 1
        assert len(clustering.labels) == italy_small.n_groups

    def test_stoc_clustering_path(self, italy_small):
        pipeline = SCubePipeline(
            PipelineConfig(clustering=ClusteringConfig(method="stoc", tau=0.4))
        )
        projection = pipeline.build_graph(italy_small)
        clustering = pipeline.cluster(italy_small, projection)
        assert clustering.n_clusters > 1

    def test_components_clustering_path(self, italy_small):
        pipeline = SCubePipeline(
            PipelineConfig(clustering=ClusteringConfig(method="components"))
        )
        projection = pipeline.build_graph(italy_small)
        clustering = pipeline.cluster(italy_small, projection)
        assert clustering.method == "connected-components"

    def test_table_builder(self, pipeline, italy_small):
        projection = pipeline.build_graph(italy_small)
        clustering = pipeline.cluster(italy_small, projection)
        table, schema = pipeline.build_table(italy_small, clustering)
        assert len(table) > 0
        assert schema.unit_name == "unitID"
        assert schema.spec("sector").multi_valued
        schema.validate(table)

    def test_run_end_to_end(self, pipeline, italy_small):
        result = pipeline.run(italy_small)
        assert len(result.cube) > 10
        assert set(result.timings) == {
            "graph_builder", "graph_clustering", "table_builder",
            "cube_builder",
        }
        assert result.n_units == result.clustering.n_clusters

    def test_visualize_writes_workbook(self, pipeline, italy_small, tmp_path):
        result = pipeline.run(italy_small)
        path = pipeline.visualize(result.cube, tmp_path / "scube.xlsx")
        assert path.exists()
        import zipfile

        with zipfile.ZipFile(path) as zf:
            assert "xl/worksheets/sheet1.xml" in zf.namelist()
            assert "xl/worksheets/sheet2.xml" in zf.namelist()


class TestHelpers:
    def test_group_attribute_table(self, italy_small):
        attrs = group_attribute_table(italy_small)
        assert attrs.n_nodes == italy_small.n_groups
        assert "sector" in attrs.names

    def test_cube_workbook_summary_sheet(self, italy_small):
        pipeline = SCubePipeline()
        result = pipeline.run(italy_small)
        workbook = cube_workbook(result.cube)
        assert workbook.sheet_names == ["cube", "summary"]
