"""The central correctness property: itemset-driven builder == naive oracle.

Random finalTables (with single- and multi-valued attributes) are pushed
through both builders under identical thresholds; the cubes must agree
cell-for-cell on counts and on every index value.  The closed-mode cube
must answer every all-mode cell identically through its lazy resolver.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.cube.naive import NaiveCubeBuilder
from repro.data.synthetic import random_final_table


@st.composite
def table_configs(draw):
    return {
        "n_rows": draw(st.integers(30, 200)),
        "n_units": draw(st.integers(1, 6)),
        "sa_attributes": {"g": draw(st.integers(2, 3)),
                          "a": draw(st.integers(2, 3))},
        "ca_attributes": {"r": draw(st.integers(2, 3))},
        "multi_valued_ca": (
            {"mv": draw(st.integers(2, 3))} if draw(st.booleans()) else {}
        ),
        "seed": draw(st.integers(0, 10_000)),
    }


@st.composite
def thresholds(draw):
    return {
        "min_population": draw(st.integers(1, 30)),
        "min_minority": draw(st.integers(1, 10)),
        "max_sa_items": draw(st.sampled_from([1, 2, None])),
        "max_ca_items": draw(st.sampled_from([1, 2, None])),
    }


@given(table_configs(), thresholds())
@settings(max_examples=25, deadline=None)
def test_builder_equals_naive_oracle(config, limits):
    table, schema = random_final_table(**config)
    smart = SegregationDataCubeBuilder(**limits).build(table, schema)
    naive = NaiveCubeBuilder(**limits).build(table, schema)
    problems = check_same_cells(smart, naive)
    assert problems == [], problems[:10]


@given(table_configs())
@settings(max_examples=15, deadline=None)
def test_closed_mode_answers_all_mode_queries(config):
    table, schema = random_final_table(**config)
    limits = {"min_population": 5, "min_minority": 2,
              "max_sa_items": 2, "max_ca_items": 2}
    full = SegregationDataCubeBuilder(mode="all", **limits).build(table, schema)
    closed = SegregationDataCubeBuilder(mode="closed", **limits).build(
        table, schema
    )
    assert len(closed) <= len(full)
    for key in full.keys():
        a = full.cell_by_key(key)
        b = closed.cell_by_key(key)       # materialised or lazily resolved
        assert b is not None, closed.describe(key)
        assert (a.population, a.minority, a.n_units) == (
            b.population, b.minority, b.n_units
        )
        for name in full.metadata.index_names:
            va, vb = a.value(name), b.value(name)
            if va == va or vb == vb:      # skip double-nan
                assert va == pytest.approx(vb), (closed.describe(key), name)


@given(table_configs())
@settings(max_examples=10, deadline=None)
def test_backends_equivalent_through_facade(config):
    """Support-only mining backends agree on the mined itemsets."""
    from repro.etl.schema import Schema  # noqa: F401  (documentation import)
    from repro.itemsets.miner import mine
    from repro.itemsets.transactions import encode_table

    table, schema = random_final_table(**config)
    db = encode_table(table, schema)
    results = [
        mine(db, 3, backend=backend).supports
        for backend in ("eclat", "fpgrowth", "apriori")
    ]
    assert results[0] == results[1] == results[2]
