"""New-vs-legacy parity for the PR-8 array graph engine.

Every hot path rebuilt in PR 8 must reproduce the seed-era set/BFS
implementations (preserved in :mod:`repro.graph.legacy`) *exactly* —
same edges, same float weights, same labels, same method strings.
Property tests drive randomly-shaped bipartite worlds through both
paths; a couple of directed tests pin the engine-selection and
parallel-fan-out corners.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import random_bipartite_world
from repro.errors import GraphError
from repro.graph import legacy
from repro.graph.bipartite import (
    BipartiteGraph,
    project_onto_groups,
    project_onto_individuals,
)
from repro.graph.components import bfs_distances, connected_components
from repro.graph.graph import Graph
from repro.graph.stoc import stoc_clustering
from repro.graph.threshold import threshold_components, threshold_profile

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 9)), max_size=80
)


def _assert_same_projection(result, reference):
    u, v, w = result.graph.edge_arrays()
    ru, rv, rw = reference.graph.edge_arrays()
    assert np.array_equal(u, ru)
    assert np.array_equal(v, rv)
    assert np.array_equal(w, rw)
    assert list(result.isolated) == list(reference.isolated)
    assert list(result.skipped_hubs) == list(reference.skipped_hubs)


@given(edge_lists, st.integers(1, 3), st.sampled_from([None, 2, 4]),
       st.sampled_from(["grouped", "cover"]))
@settings(max_examples=80, deadline=None)
def test_group_projection_matches_legacy(raw_edges, min_shared, hub,
                                         engine):
    g = BipartiteGraph.from_edges(15, 10, raw_edges)
    result = project_onto_groups(
        g, min_shared=min_shared, max_left_degree=hub, engine=engine
    )
    reference = legacy.project_onto_groups_legacy(
        g, min_shared=min_shared, max_left_degree=hub
    )
    _assert_same_projection(result, reference)


@given(edge_lists, st.integers(1, 3), st.sampled_from([None, 2, 4]),
       st.sampled_from(["grouped", "cover"]))
@settings(max_examples=80, deadline=None)
def test_individual_projection_matches_legacy(raw_edges, min_shared, hub,
                                              engine):
    g = BipartiteGraph.from_edges(15, 10, raw_edges)
    result = project_onto_individuals(
        g, min_shared=min_shared, max_right_degree=hub, engine=engine
    )
    reference = legacy.project_onto_individuals_legacy(
        g, min_shared=min_shared, max_right_degree=hub
    )
    _assert_same_projection(result, reference)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_components_match_legacy(raw_edges):
    g = BipartiteGraph.from_edges(15, 10, raw_edges)
    graph = project_onto_groups(g).graph
    new = connected_components(graph)
    old = legacy.connected_components_legacy(graph)
    assert np.array_equal(new.labels, old.labels)
    assert new.n_clusters == old.n_clusters
    assert new.method == old.method


@given(edge_lists, st.floats(0.0, 6.0))
@settings(max_examples=60, deadline=None)
def test_threshold_matches_legacy(raw_edges, min_weight):
    g = BipartiteGraph.from_edges(15, 10, raw_edges)
    graph = project_onto_groups(g).graph
    new = threshold_components(graph, min_weight)
    old = legacy.threshold_components_legacy(graph, min_weight)
    assert np.array_equal(new.labels, old.labels)
    assert new.n_clusters == old.n_clusters
    assert new.method == old.method


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_threshold_profile_matches_legacy(raw_edges):
    g = BipartiteGraph.from_edges(15, 10, raw_edges)
    graph = project_onto_groups(g).graph
    thresholds = [1.0, 2.0, 3.0]
    assert threshold_profile(graph, thresholds) \
        == legacy.threshold_profile_legacy(graph, thresholds)


@given(st.integers(0, 2**31 - 1), st.floats(0.1, 0.9),
       st.floats(0.1, 0.9), st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_stoc_matches_legacy_on_attributed_world(rng_seed, tau, alpha,
                                                 horizon):
    bipartite, attributes = random_bipartite_world(
        300, 40, seed=rng_seed % 1000
    )
    graph = project_onto_groups(bipartite, max_left_degree=20).graph
    new = stoc_clustering(graph, attributes, tau=tau, alpha=alpha,
                          horizon=horizon, seed=rng_seed)
    old = legacy.stoc_clustering_legacy(graph, attributes, tau=tau,
                                        alpha=alpha, horizon=horizon,
                                        seed=rng_seed)
    assert np.array_equal(new.labels, old.labels)
    assert new.n_clusters == old.n_clusters
    assert new.method == old.method


def test_stoc_degree_seeding_matches_legacy():
    bipartite, attributes = random_bipartite_world(400, 50, seed=5)
    graph = project_onto_groups(bipartite, max_left_degree=20).graph
    new = stoc_clustering(graph, attributes, seed_order="degree")
    old = legacy.stoc_clustering_legacy(graph, attributes,
                                        seed_order="degree")
    assert np.array_equal(new.labels, old.labels)


def test_stoc_without_attributes_matches_legacy():
    bipartite, _ = random_bipartite_world(400, 50, seed=6)
    graph = project_onto_groups(bipartite, max_left_degree=20).graph
    new = stoc_clustering(graph, None, tau=0.6, seed=3)
    old = legacy.stoc_clustering_legacy(graph, None, tau=0.6, seed=3)
    assert np.array_equal(new.labels, old.labels)


def test_bfs_distances_matches_dict_walk():
    bipartite, _ = random_bipartite_world(300, 40, seed=9)
    graph = project_onto_groups(bipartite, max_left_degree=20).graph
    for source in (0, 7, 23):
        full = bfs_distances(graph, source)
        bounded = bfs_distances(graph, source, max_hops=2)
        assert all(bounded[n] <= 2 for n in bounded)
        assert all(full[n] == bounded[n] for n in bounded)
        assert full[source] == 0


def test_parallel_cover_projection_matches_serial():
    bipartite, _ = random_bipartite_world(3000, 150, seed=11)
    serial = project_onto_groups(
        bipartite, max_left_degree=30, engine="cover"
    )
    parallel = project_onto_groups(
        bipartite, max_left_degree=30, engine="cover", workers=2
    )
    _assert_same_projection(parallel, serial)
    reference = legacy.project_onto_groups_legacy(
        bipartite, max_left_degree=30
    )
    _assert_same_projection(parallel, reference)


def test_unknown_engine_rejected():
    g = BipartiteGraph.from_edges(2, 2, [(0, 0)])
    with pytest.raises(GraphError, match="engine"):
        project_onto_groups(g, engine="quantum")


def test_auto_engine_matches_grouped():
    bipartite, _ = random_bipartite_world(2000, 100, seed=13)
    auto = project_onto_groups(bipartite, max_left_degree=30, engine="auto")
    grouped = project_onto_groups(
        bipartite, max_left_degree=30, engine="grouped"
    )
    _assert_same_projection(auto, grouped)


def test_graph_from_edge_arrays_accumulates_duplicates():
    u = np.array([0, 1, 0], dtype=np.int64)
    v = np.array([1, 0, 2], dtype=np.int64)
    w = np.array([1.0, 2.0, 1.0])
    g = Graph.from_edge_arrays(3, u, v, w)
    assert g.n_edges == 2
    assert g.weight(0, 1) == 3.0   # (0,1) and (1,0) merge
    assert g.weight(0, 2) == 1.0
