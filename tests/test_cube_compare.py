"""Tests of cross-cube comparison (the Italy-vs-Estonia discussion)."""

from __future__ import annotations

import pytest

from repro.cube.builder import build_cube
from repro.cube.compare import compare_cubes, comparison_rows
from repro.etl.schema import Schema
from repro.etl.table import Table


def _cube(spreads: dict[str, tuple[int, int]]):
    """One cube per 'country': spreads maps region -> (F in unit0, F in unit1)
    out of 10 women and 10 men per region."""
    rows = []
    unit = 0
    for region, (a, b) in spreads.items():
        rows += [("F", region, unit)] * a + [("F", region, unit + 1)] * b
        rows += [("M", region, unit)] * (10 - a)
        rows += [("M", region, unit + 1)] * (10 - b)
        unit += 2
    table = Table.from_rows(["sex", "region", "unitID"], rows)
    schema = Schema.build(segregation=["sex"], context=["region"],
                          unit="unitID")
    return build_cube(table, schema, min_population=1, min_minority=1)


@pytest.fixture()
def left():
    return _cube({"north": (9, 1), "south": (5, 5)})


@pytest.fixture()
def right():
    return _cube({"north": (5, 5), "south": (9, 1)})


class TestCompareCubes:
    def test_aligns_on_decoded_coordinates(self, left, right):
        comparisons = compare_cubes(left, right, "D")
        descriptions = {c.description for c in comparisons}
        assert "[sex=F | region=north]" in descriptions
        assert "[sex=F | region=south]" in descriptions

    def test_deltas_are_signed_right_minus_left(self, left, right):
        comparisons = {c.description: c for c in compare_cubes(left, right)}
        north = comparisons["[sex=F | region=north]"]
        # left north is segregated (0.8), right north is even (0.0).
        assert north.left_value == pytest.approx(0.8)
        assert north.right_value == pytest.approx(0.0)
        assert north.delta == pytest.approx(-0.8)

    def test_sorted_by_divergence(self, left, right):
        comparisons = compare_cubes(left, right, "D")
        deltas = [abs(c.delta) for c in comparisons]
        assert deltas == sorted(deltas, reverse=True)

    def test_identical_cubes_have_zero_deltas(self, left):
        for c in compare_cubes(left, left, "D"):
            assert c.delta == pytest.approx(0.0)

    def test_min_minority_guard(self, left, right):
        assert compare_cubes(left, right, "D", min_minority=1000) == []

    def test_comparison_rows_shape(self, left, right):
        rows = comparison_rows(compare_cubes(left, right, "D"), k=2)
        assert len(rows) == 2
        assert len(rows[0]) == 4

    def test_different_dictionaries_align(self, left):
        """A cube built from a table with extra attribute values still
        aligns on shared coordinates."""
        other = _cube(
            {"north": (7, 3), "south": (5, 5), "centre": (6, 4)}
        )
        comparisons = compare_cubes(left, other, "D")
        descriptions = {c.description for c in comparisons}
        assert "[sex=F | region=north]" in descriptions
        assert not any("centre" in d for d in descriptions)
