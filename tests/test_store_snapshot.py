"""Tests of the snapshot store: dump → validate → open round trips.

Pins the PR 4 contract: for any built cube,
``open_snapshot(dump_snapshot(cube))`` yields identical cells
(``check_same_cells`` at atol=0) and identical ``top``/``slice``/pivot
outputs, both in memory and memory-mapped; every corruption mode
surfaces as a clear :class:`~repro.errors.SnapshotError`.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cube.builder import SegregationDataCubeBuilder, build_cube
from repro.cube.cell import CellStats
from repro.cube.cube import CubeMetadata, SegregationCube, check_same_cells
from repro.cube.coordinates import make_key
from repro.errors import SnapshotError
from repro.itemsets.items import Item, ItemDictionary, ItemKind
from repro.report.pivot import pivot
from repro.store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    dump_snapshot,
    open_snapshot,
    validate_snapshot,
)


@pytest.fixture(scope="module")
def built(schools):
    table, schema = schools
    return build_cube(table, schema, min_population=10, min_minority=3)


def _metadata(index_names, mode="all"):
    return CubeMetadata(
        index_names=index_names, min_population=1, min_minority=1,
        n_rows=10, n_units=2, mode=mode, backend="test",
    )


def _tiny_dictionary():
    dictionary = ItemDictionary()
    dictionary.add(Item("sex", "F"), ItemKind.SA)
    dictionary.add(Item("region", "north"), ItemKind.CA)
    dictionary.add(Item("n_boards", 2), ItemKind.CA)       # int value
    dictionary.add(Item("active", True), ItemKind.CA)      # bool value
    dictionary.add(Item("share", 0.25), ItemKind.CA)       # float value
    return dictionary


class TestRoundTrip:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_cells_and_queries_identical(self, built, tmp_path, mmap):
        dump_snapshot(built, tmp_path / "snap")
        reopened = open_snapshot(tmp_path / "snap", mmap=mmap)
        assert check_same_cells(built, reopened, atol=0.0) == []
        assert list(reopened.keys()) == list(built.keys())
        assert (
            [s.key for s in reopened.top("D", k=10, min_minority=5)]
            == [s.key for s in built.top("D", k=10, min_minority=5)]
        )
        want = {"city": "Rivertown"}
        assert (
            [s.key for s in reopened.slice(ca=want)]
            == [s.key for s in built.slice(ca=want)]
        )
        assert (
            pivot(reopened, "D", "ethnicity", "city")
            == pivot(built, "D", "ethnicity", "city")
        )
        assert reopened.to_rows() == built.to_rows()

    def test_cube_dump_method_equivalent(self, built, tmp_path):
        built.dump(tmp_path / "via_method")
        reopened = open_snapshot(tmp_path / "via_method")
        assert check_same_cells(built, reopened, atol=0.0) == []

    def test_metadata_and_vocabulary_survive(self, built, tmp_path):
        dump_snapshot(built, tmp_path / "snap")
        reopened = open_snapshot(tmp_path / "snap")
        assert reopened.metadata.index_names == built.metadata.index_names
        assert reopened.metadata.mode == built.metadata.mode
        assert reopened.metadata.n_rows == built.metadata.n_rows
        assert reopened.metadata.n_units == built.metadata.n_units
        assert reopened.metadata.extra["snapshot"]["format_version"] == (
            FORMAT_VERSION
        )
        for i in range(len(built.dictionary)):
            assert reopened.dictionary.item(i) == built.dictionary.item(i)
            assert reopened.dictionary.kind(i) == built.dictionary.kind(i)

    def test_mmapped_arrays_are_read_only(self, built, tmp_path):
        dump_snapshot(built, tmp_path / "snap")
        for mmap in (True, False):
            reopened = open_snapshot(tmp_path / "snap", mmap=mmap)
            with pytest.raises(ValueError):
                reopened.table.population[0] = 99

    def test_empty_cube_round_trips(self, tmp_path):
        cube = SegregationCube(
            {}, _tiny_dictionary(), _metadata(["D"])
        )
        dump_snapshot(cube, tmp_path / "empty")
        reopened = open_snapshot(tmp_path / "empty")
        assert len(reopened) == 0
        assert check_same_cells(cube, reopened, atol=0.0) == []
        assert reopened.to_rows() == []
        assert reopened.top("D", k=5) == []

    def test_single_cell_cube_round_trips(self, tmp_path):
        key = make_key([0], [1])
        cube = SegregationCube(
            {key: CellStats(key, 8, 3, 2, {"D": 0.25})},
            _tiny_dictionary(),
            _metadata(["D"]),
        )
        dump_snapshot(cube, tmp_path / "one")
        reopened = open_snapshot(tmp_path / "one")
        assert len(reopened) == 1
        assert check_same_cells(cube, reopened, atol=0.0) == []
        cell = reopened.cell_by_key(key)
        assert cell is not None and cell.value("D") == 0.25

    def test_numpy_scalar_item_values_dump_and_round_trip(self, tmp_path):
        """np.int64/np.bool_ vocabulary values must not break JSON and
        must reopen as their Python equivalents."""
        dictionary = ItemDictionary()
        dictionary.add(Item("g", "F"), ItemKind.SA)
        dictionary.add(Item("n", np.int64(2)), ItemKind.CA)
        dictionary.add(Item("flag", np.bool_(True)), ItemKind.CA)
        key = make_key([0], [1])
        cube = SegregationCube(
            {key: CellStats(key, 8, 3, 2, {"D": 0.25})},
            dictionary,
            _metadata(["D"]),
        )
        dump_snapshot(cube, tmp_path / "npvals")
        reopened = open_snapshot(tmp_path / "npvals")
        assert reopened.dictionary.item(1) == Item("n", 2)
        assert type(reopened.dictionary.item(1).value) is int
        assert type(reopened.dictionary.item(2).value) is bool

    def test_overwrite_prunes_stale_column_files(self, schools, tmp_path):
        """Re-dumping a cube with fewer index columns removes orphans."""
        table, schema = schools
        wide = build_cube(table, schema, indexes=["D", "G", "H"],
                          min_population=10, min_minority=3)
        narrow = build_cube(table, schema, indexes=["D"],
                            min_population=10, min_minority=3)
        dump_snapshot(wide, tmp_path / "snap")
        assert (tmp_path / "snap" / "col_2.npy").exists()
        dump_snapshot(narrow, tmp_path / "snap")
        assert (tmp_path / "snap" / "col_0.npy").exists()
        assert not (tmp_path / "snap" / "col_1.npy").exists()
        assert not (tmp_path / "snap" / "col_2.npy").exists()
        reopened = open_snapshot(tmp_path / "snap")
        assert check_same_cells(narrow, reopened, atol=0.0) == []

    def test_non_string_item_values_survive_exactly(self, tmp_path):
        """int/bool/float vocabulary values keep their exact type."""
        key = make_key([0], [2])
        cube = SegregationCube(
            {key: CellStats(key, 8, 3, 2, {"D": 0.5})},
            _tiny_dictionary(),
            _metadata(["D"]),
        )
        dump_snapshot(cube, tmp_path / "typed")
        reopened = open_snapshot(tmp_path / "typed")
        for i in range(len(cube.dictionary)):
            original = cube.dictionary.item(i)
            restored = reopened.dictionary.item(i)
            assert restored == original
            assert type(restored.value) is type(original.value)

    def test_custom_scalar_fallback_index_round_trips(
        self, schools, tmp_path
    ):
        """A registered custom index (scalar fallback kernel) persists."""
        from repro.indexes.base import _REGISTRY, IndexSpec, register

        name = "TSnap"
        if name.upper() not in _REGISTRY:
            register(IndexSpec(name, "Minority proportion",
                               lambda c: c.proportion, (0.0, 1.0), True))
        try:
            table, schema = schools
            cube = build_cube(
                table, schema, indexes=["D", name],
                min_population=10, min_minority=3,
            )
            dump_snapshot(cube, tmp_path / "custom")
            reopened = open_snapshot(tmp_path / "custom")
            assert reopened.metadata.index_names == ["D", name]
            assert check_same_cells(cube, reopened, atol=0.0) == []
        finally:
            _REGISTRY.pop(name.upper(), None)

    def test_closed_mode_materialised_cells_round_trip(
        self, schools, tmp_path
    ):
        """Closed-mode cubes persist their materialised (closed) cells;
        the lazy resolver is build-state and does not survive."""
        table, schema = schools
        closed = SegregationDataCubeBuilder(
            mode="closed", min_population=10, min_minority=3
        ).build(table, schema)
        full = build_cube(table, schema, min_population=10, min_minority=3)
        dump_snapshot(closed, tmp_path / "closed")
        reopened = open_snapshot(tmp_path / "closed")
        assert check_same_cells(closed, reopened, atol=0.0) == []
        assert reopened.metadata.mode == "closed"
        # Any key the live closed cube resolves lazily and the snapshot
        # does not materialise answers None after reopen (covers gone).
        lazy_keys = [
            key for key in full.keys() if key not in set(closed.keys())
        ]
        for key in lazy_keys:
            assert closed.cell_by_key(key) is not None   # live: resolver
            assert reopened.cell_by_key(key) is None     # snapshot: cells only

    def test_extra_undeclared_columns_round_trip(self, tmp_path):
        """Hand-built cells with extra index entries keep their columns."""
        key = make_key([0], [1])
        cube = SegregationCube(
            {key: CellStats(key, 8, 3, 2, {"D": 0.25, "X": 0.75})},
            _tiny_dictionary(),
            _metadata(["D"]),
        )
        dump_snapshot(cube, tmp_path / "extra")
        reopened = open_snapshot(tmp_path / "extra")
        assert reopened.table.value_at(0, "X") == 0.75


class TestValidation:
    def test_validate_accepts_fresh_snapshot(self, built, tmp_path):
        dump_snapshot(built, tmp_path / "snap")
        manifest = validate_snapshot(tmp_path / "snap")
        assert manifest.n_cells == len(built)
        assert manifest.column_names == list(built.metadata.index_names)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="does not exist"):
            open_snapshot(tmp_path / "nope")

    def test_missing_manifest_rejected(self, tmp_path):
        (tmp_path / "snap").mkdir()
        with pytest.raises(SnapshotError, match="manifest"):
            open_snapshot(tmp_path / "snap")

    def test_corrupted_manifest_rejected(self, built, tmp_path):
        dump_snapshot(built, tmp_path / "snap")
        (tmp_path / "snap" / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotError, match="not valid JSON"):
            open_snapshot(tmp_path / "snap")

    def test_version_mismatch_rejected(self, built, tmp_path):
        dump_snapshot(built, tmp_path / "snap")
        manifest_path = tmp_path / "snap" / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="format version"):
            open_snapshot(tmp_path / "snap")

    def test_missing_required_field_rejected(self, built, tmp_path):
        dump_snapshot(built, tmp_path / "snap")
        manifest_path = tmp_path / "snap" / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        del payload["items"]
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="missing required"):
            open_snapshot(tmp_path / "snap")

    def test_missing_array_file_rejected(self, built, tmp_path):
        dump_snapshot(built, tmp_path / "snap")
        (tmp_path / "snap" / "minority.npy").unlink()
        with pytest.raises(SnapshotError, match="minority.npy"):
            open_snapshot(tmp_path / "snap")

    def test_shape_mismatch_rejected(self, built, tmp_path):
        dump_snapshot(built, tmp_path / "snap")
        np.save(tmp_path / "snap" / "minority.npy",
                np.zeros(3, dtype=np.int64))
        with pytest.raises(SnapshotError, match="minority.npy"):
            open_snapshot(tmp_path / "snap")

    def test_truncated_array_file_rejected(self, built, tmp_path):
        dump_snapshot(built, tmp_path / "snap")
        file = tmp_path / "snap" / "population.npy"
        file.write_bytes(file.read_bytes()[:16])
        with pytest.raises(SnapshotError):
            open_snapshot(tmp_path / "snap")

    def test_corrupted_vocabulary_value_rejected(self, built, tmp_path):
        """A tampered typed value raises SnapshotError, not ValueError."""
        dump_snapshot(built, tmp_path / "snap")
        manifest_path = tmp_path / "snap" / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["items"][0]["value_type"] = "int"
        payload["items"][0]["value"] = "not-a-number"
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="not a valid int"):
            open_snapshot(tmp_path / "snap")

    def test_corrupted_bool_vocabulary_value_rejected(
        self, built, tmp_path
    ):
        dump_snapshot(built, tmp_path / "snap")
        manifest_path = tmp_path / "snap" / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["items"][0]["value_type"] = "bool"
        payload["items"][0]["value"] = "false"   # string, not JSON bool
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="not a bool"):
            open_snapshot(tmp_path / "snap")

    def test_interrupted_overwrite_leaves_no_stale_manifest(
        self, built, tmp_path, monkeypatch
    ):
        """A crash mid-re-dump must not leave an old manifest that
        validates a mix of old and new arrays."""
        import repro.store.snapshot as snapshot_mod

        dump_snapshot(built, tmp_path / "snap")
        real_save = np.save
        calls = {"n": 0}

        def failing_save(file, array, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise OSError("disk full")
            return real_save(file, array, **kwargs)

        monkeypatch.setattr(snapshot_mod.np, "save", failing_save)
        with pytest.raises(OSError):
            dump_snapshot(built, tmp_path / "snap")
        monkeypatch.undo()
        with pytest.raises(SnapshotError, match="manifest"):
            open_snapshot(tmp_path / "snap")
