"""Tests of the from-scratch OOXML workbook writer.

Workbooks are verified by unzipping and XML-parsing the parts — the same
thing Excel/LibreOffice do on open.
"""

from __future__ import annotations

import zipfile
import xml.etree.ElementTree as ET

import pytest

from repro.errors import ReportError
from repro.report.xlsx import (
    Sheet,
    Workbook,
    cell_reference,
    column_letter,
    rows_to_workbook,
)

NS = "{http://schemas.openxmlformats.org/spreadsheetml/2006/main}"


def read_sheet_values(path, sheet_index=1):
    """Parse cell values back out of a saved workbook."""
    with zipfile.ZipFile(path) as zf:
        tree = ET.fromstring(zf.read(f"xl/worksheets/sheet{sheet_index}.xml"))
    values = {}
    for cell in tree.iter(f"{NS}c"):
        ref = cell.get("r")
        kind = cell.get("t")
        if kind == "inlineStr":
            values[ref] = cell.find(f"{NS}is/{NS}t").text
        elif kind == "b":
            values[ref] = bool(int(cell.find(f"{NS}v").text))
        else:
            values[ref] = float(cell.find(f"{NS}v").text)
    return values


class TestColumnMath:
    @pytest.mark.parametrize(
        "index, letter",
        [(0, "A"), (25, "Z"), (26, "AA"), (27, "AB"), (701, "ZZ"), (702, "AAA")],
    )
    def test_column_letters(self, index, letter):
        assert column_letter(index) == letter

    def test_cell_reference(self):
        assert cell_reference(0, 0) == "A1"
        assert cell_reference(9, 27) == "AB10"

    def test_negative_rejected(self):
        with pytest.raises(ReportError):
            column_letter(-1)
        with pytest.raises(ReportError):
            cell_reference(-1, 0)


class TestSheet:
    def test_append_rows_and_headers(self):
        sheet = Sheet("s")
        assert sheet.append_header(["a", "b"]) == 0
        assert sheet.append_row([1, 2]) == 1
        assert sheet.n_rows == 2

    def test_set_cell_positions(self):
        sheet = Sheet("s")
        sheet.set_cell(4, 2, "x")
        assert sheet.n_rows == 5

    def test_invalid_names(self):
        with pytest.raises(ReportError):
            Sheet("")
        with pytest.raises(ReportError):
            Sheet("x" * 32)
        with pytest.raises(ReportError):
            Sheet("bad/name")

    def test_negative_coordinates(self):
        sheet = Sheet("s")
        with pytest.raises(ReportError):
            sheet.set_cell(-1, 0, "x")


class TestWorkbookSave:
    def test_required_parts_present(self, tmp_path):
        wb = Workbook()
        wb.add_sheet("one").append_row(["hello"])
        path = wb.save(tmp_path / "t.xlsx")
        with zipfile.ZipFile(path) as zf:
            names = set(zf.namelist())
        assert "[Content_Types].xml" in names
        assert "_rels/.rels" in names
        assert "xl/workbook.xml" in names
        assert "xl/_rels/workbook.xml.rels" in names
        assert "xl/styles.xml" in names
        assert "xl/worksheets/sheet1.xml" in names

    def test_all_parts_are_valid_xml(self, tmp_path):
        wb = Workbook()
        wb.add_sheet("one").append_row(["hello", 1, 2.5, True])
        path = wb.save(tmp_path / "t.xlsx")
        with zipfile.ZipFile(path) as zf:
            for name in zf.namelist():
                ET.fromstring(zf.read(name))

    def test_values_round_trip(self, tmp_path):
        wb = Workbook()
        sheet = wb.add_sheet("data")
        sheet.append_header(["name", "score"])
        sheet.append_row(["ada", 3.5])
        sheet.append_row(["bob", 4])
        path = wb.save(tmp_path / "v.xlsx")
        values = read_sheet_values(path)
        assert values["A1"] == "name"
        assert values["A2"] == "ada"
        assert values["B2"] == 3.5
        assert values["B3"] == 4.0

    def test_nan_rendered_as_dash(self, tmp_path):
        wb = Workbook()
        wb.add_sheet("s").append_row([float("nan")])
        values = read_sheet_values(wb.save(tmp_path / "n.xlsx"))
        assert values["A1"] == "-"

    def test_xml_escaping(self, tmp_path):
        wb = Workbook()
        wb.add_sheet("s").append_row(["<b>&\"quoted\"</b>"])
        values = read_sheet_values(wb.save(tmp_path / "e.xlsx"))
        assert values["A1"] == "<b>&\"quoted\"</b>"

    def test_multiple_sheets(self, tmp_path):
        wb = Workbook()
        wb.add_sheet("alpha").append_row([1])
        wb.add_sheet("beta").append_row([2])
        path = wb.save(tmp_path / "m.xlsx")
        assert read_sheet_values(path, 1)["A1"] == 1.0
        assert read_sheet_values(path, 2)["A1"] == 2.0
        with zipfile.ZipFile(path) as zf:
            workbook = ET.fromstring(zf.read("xl/workbook.xml"))
        names = [s.get("name") for s in workbook.iter(f"{NS}sheet")]
        assert names == ["alpha", "beta"]

    def test_duplicate_sheet_names_rejected(self):
        wb = Workbook()
        wb.add_sheet("x")
        with pytest.raises(ReportError, match="duplicate"):
            wb.add_sheet("x")

    def test_empty_workbook_rejected(self, tmp_path):
        with pytest.raises(ReportError):
            Workbook().save(tmp_path / "nope.xlsx")

    def test_sheet_lookup(self):
        wb = Workbook()
        wb.add_sheet("x")
        assert wb.sheet("x").name == "x"
        with pytest.raises(ReportError):
            wb.sheet("missing")

    def test_empty_cells_skipped(self, tmp_path):
        wb = Workbook()
        wb.add_sheet("s").append_row(["", None, "x"])
        values = read_sheet_values(wb.save(tmp_path / "sk.xlsx"))
        assert "A1" not in values and "B1" not in values
        assert values["C1"] == "x"

    def test_header_cells_styled_bold(self, tmp_path):
        wb = Workbook()
        sheet = wb.add_sheet("s")
        sheet.append_header(["h"])
        sheet.append_row(["v"])
        path = wb.save(tmp_path / "b.xlsx")
        with zipfile.ZipFile(path) as zf:
            xml = zf.read("xl/worksheets/sheet1.xml").decode()
        assert 's="1"' in xml


class TestUnicodeAndFuzz:
    """Property tests: arbitrary text must survive the XML round trip."""

    def test_unicode_round_trip(self, tmp_path):
        wb = Workbook()
        values = ["città", "São Paulo", "日本語", "emoji ✓", "tab\tseparated"]
        wb.add_sheet("u").append_row(values)
        back = read_sheet_values(wb.save(tmp_path / "u.xlsx"))
        for col, expected in enumerate(values):
            ref = f"{column_letter(col)}1"
            assert back[ref] == expected

    def test_random_text_round_trip(self, tmp_path):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            st.lists(
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs", "Cc"), max_codepoint=0x2FFF
                    ),
                    min_size=1,
                    max_size=30,
                ),
                min_size=1,
                max_size=5,
            )
        )
        @settings(max_examples=30, deadline=None)
        def round_trip(texts):
            wb = Workbook()
            wb.add_sheet("s").append_row(texts)
            back = read_sheet_values(wb.save(tmp_path / "fuzz.xlsx"))
            for col, expected in enumerate(texts):
                ref = f"{column_letter(col)}1"
                assert back[ref] == expected

        round_trip()

    def test_numbers_round_trip_precisely(self, tmp_path):
        wb = Workbook()
        values = [0.1, 1e-12, 1e15, -2.5, 123456789]
        wb.add_sheet("n").append_row(values)
        back = read_sheet_values(wb.save(tmp_path / "n.xlsx"))
        for col, expected in enumerate(values):
            ref = f"{column_letter(col)}1"
            assert back[ref] == pytest.approx(expected, rel=1e-15)


class TestRowsToWorkbook:
    def test_dict_rows(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        wb = rows_to_workbook(rows, sheet_name="t")
        values = read_sheet_values(wb.save(tmp_path / "d.xlsx"))
        assert values["A1"] == "a"
        assert values["A3"] == 2.0

    def test_empty_rows(self, tmp_path):
        wb = rows_to_workbook([], sheet_name="t")
        values = read_sheet_values(wb.save(tmp_path / "0.xlsx"))
        assert values["A1"] == "(empty)"
