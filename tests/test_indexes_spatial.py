"""Tests of spatially-adjusted dissimilarity (the checkerboard problem)."""

from __future__ import annotations

import math

import pytest

from repro.errors import SegregationIndexError
from repro.graph.graph import Graph
from repro.indexes.binary import dissimilarity
from repro.indexes.counts import UnitCounts
from repro.indexes.spatial import (
    adjusted_dissimilarity,
    boundary_term,
    checkerboard_gap,
    grid_adjacency,
)


def _checkerboard_counts(n_rows: int, n_cols: int, unit_size: int = 10):
    """Alternating all-minority / all-majority cells on a grid."""
    shares = [
        unit_size if (r + c) % 2 == 0 else 0
        for r in range(n_rows)
        for c in range(n_cols)
    ]
    t = [unit_size] * (n_rows * n_cols)
    return UnitCounts(t, shares, drop_empty=False)


def _clustered_counts(n_rows: int, n_cols: int, unit_size: int = 10):
    """All-minority cells in the left half, all-majority in the right."""
    shares = [
        unit_size if c < n_cols // 2 else 0
        for r in range(n_rows)
        for c in range(n_cols)
    ]
    t = [unit_size] * (n_rows * n_cols)
    return UnitCounts(t, shares, drop_empty=False)


class TestGridAdjacency:
    def test_grid_shape(self):
        grid = grid_adjacency(2, 3)
        assert grid.n_nodes == 6
        # 2 rows x 3 cols: 2*2 horizontal + 3 vertical = 7 edges
        assert grid.n_edges == 7
        assert grid.has_edge(0, 1) and grid.has_edge(0, 3)
        assert not grid.has_edge(0, 4)

    def test_invalid_dimensions(self):
        with pytest.raises(SegregationIndexError):
            grid_adjacency(0, 3)


class TestBoundaryTerm:
    def test_checkerboard_boundary_is_maximal(self):
        counts = _checkerboard_counts(4, 4)
        grid = grid_adjacency(4, 4)
        # Every adjacent pair differs by |1 - 0| = 1.
        assert boundary_term(counts, grid) == pytest.approx(1.0)

    def test_clustered_boundary_is_small(self):
        counts = _clustered_counts(4, 4)
        grid = grid_adjacency(4, 4)
        # Only the 4 edges crossing the centre line differ.
        assert boundary_term(counts, grid) == pytest.approx(4 / 24)

    def test_no_adjacency_means_no_correction(self):
        counts = UnitCounts([10, 10], [8, 2])
        empty = Graph(2)
        assert boundary_term(counts, empty) == 0.0

    def test_size_mismatch_rejected(self):
        counts = UnitCounts([10, 10], [8, 2])
        with pytest.raises(SegregationIndexError, match="nodes"):
            boundary_term(counts, Graph(3))

    def test_weighted_contiguity(self):
        counts = UnitCounts([10, 10, 10], [10, 0, 5], drop_empty=False)
        graph = Graph(3)
        graph.add_edge(0, 1, 3.0)      # |1-0| weighted 3
        graph.add_edge(1, 2, 1.0)      # |0-0.5| weighted 1
        expected = (3.0 * 1.0 + 1.0 * 0.5) / 4.0
        assert boundary_term(counts, graph, weighted=True) == pytest.approx(
            expected
        )


class TestAdjustedDissimilarity:
    def test_checkerboard_correction_dominates(self):
        """Scattered segregation: D = 1 but D(adj) drops by the full
        boundary term — the checkerboard artefact the index fixes."""
        counts = _checkerboard_counts(4, 4)
        grid = grid_adjacency(4, 4)
        assert dissimilarity(counts) == pytest.approx(1.0)
        assert adjusted_dissimilarity(counts, grid) == pytest.approx(0.0)
        assert checkerboard_gap(counts, grid) == pytest.approx(1.0)

    def test_clustered_pattern_keeps_most_of_d(self):
        counts = _clustered_counts(4, 4)
        grid = grid_adjacency(4, 4)
        assert dissimilarity(counts) == pytest.approx(1.0)
        adjusted = adjusted_dissimilarity(counts, grid)
        assert adjusted == pytest.approx(1.0 - 4 / 24)
        assert checkerboard_gap(counts, grid) < 0.2

    def test_scattered_vs_clustered_ordering(self):
        """Same aspatial D, different geography: the spatial index ranks
        the ghetto pattern above the scattered one."""
        grid = grid_adjacency(4, 4)
        scattered = adjusted_dissimilarity(_checkerboard_counts(4, 4), grid)
        clustered = adjusted_dissimilarity(_clustered_counts(4, 4), grid)
        assert clustered > scattered

    def test_degenerate_is_nan(self):
        counts = UnitCounts([10, 10], [0, 0], drop_empty=False)
        assert math.isnan(adjusted_dissimilarity(counts, Graph(2)))
        assert math.isnan(checkerboard_gap(counts, Graph(2)))
