"""Tests of the WSGI serving tier: byte parity and the error surface.

The acceptance contract: every endpoint's body is **byte-identical** to
the JSON the in-process payload builders produce for the equivalent
CubeService call — for the single snapshot, for the sharded router, and
for timelines — and errors map to 400 (malformed/unknown parameters),
404 (unknown endpoint, missing cell), 405 (wrong method) and 500, all
with JSON bodies.
"""

from __future__ import annotations

import json

import pytest

from repro.cube.builder import build_cube
from repro.serve import payloads
from repro.serve.http import make_app, serve, wsgi_get
from repro.serve.service import CubeService
from repro.store import dump_into_timeline, dump_snapshot
from repro.store.shards import dump_sharded_snapshot


@pytest.fixture(scope="module")
def built(schools):
    table, schema = schools
    return build_cube(table, schema, min_population=10, min_minority=3)


@pytest.fixture(scope="module")
def snapshot_dir(built, tmp_path_factory):
    path = tmp_path_factory.mktemp("http") / "snap"
    dump_snapshot(built, path)
    return path


@pytest.fixture(scope="module")
def sharded_dir(built, tmp_path_factory):
    path = tmp_path_factory.mktemp("http") / "sharded"
    dump_sharded_snapshot(built, path, by="hash", n_shards=4)
    return path


@pytest.fixture(scope="module")
def app(snapshot_dir):
    return make_app(snapshot_dir)


@pytest.fixture(scope="module")
def reference(snapshot_dir):
    return CubeService(snapshot_dir)


SA = "sa=ethnicity%3Dminority"
CA = "ca=city%3DRivertown"


class TestByteParity:
    def expected(self, reference, query):
        sa = {"ethnicity": "minority"}
        ca = {"city": "Rivertown"}
        build = {
            f"/top?index=D&k=5&min_minority=5": lambda: payloads.top_payload(
                reference, index_name="D", k=5, min_minority=5
            ),
            f"/slice?{CA}": lambda: payloads.cells_payload(
                reference, reference.slice(ca=ca)
            ),
            f"/cell?{SA}": lambda: payloads.cell_payload(
                reference, reference.cell(sa=sa)
            ),
            f"/children?{SA}": lambda: payloads.cells_payload(
                reference, reference.children(sa=sa)
            ),
            f"/parents?{SA}&{CA}": lambda: payloads.cells_payload(
                reference, reference.parents(sa=sa, ca=ca)
            ),
            "/pivot?index=D&rows=ethnicity&cols=city": lambda:
                payloads.pivot_payload(reference, "D", "ethnicity", "city"),
            "/dates": lambda: payloads.dates_payload(reference),
        }
        return payloads.dumps(build[query]())

    @pytest.mark.parametrize("query", [
        "/top?index=D&k=5&min_minority=5",
        f"/slice?{CA}",
        f"/cell?{SA}",
        f"/children?{SA}",
        f"/parents?{SA}&{CA}",
        "/pivot?index=D&rows=ethnicity&cols=city",
        "/dates",
    ])
    def test_endpoint_bytes_equal_in_process_payload(
        self, app, reference, query
    ):
        status, headers, body = wsgi_get(app, query)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert int(headers["Content-Length"]) == len(body)
        assert body == self.expected(reference, query)

    @pytest.mark.parametrize("query", [
        "/top?index=D&k=5&min_minority=5",
        f"/slice?{CA}",
        f"/cell?{SA}",
        f"/children?{SA}",
        f"/parents?{SA}&{CA}",
        "/pivot?index=D&rows=ethnicity&cols=city",
    ])
    def test_sharded_app_bytes_equal_unsharded(
        self, sharded_dir, app, query
    ):
        sharded_app = make_app(sharded_dir)
        _, _, unsharded = wsgi_get(app, query)
        status, _, body = wsgi_get(sharded_app, query)
        assert status == 200
        assert body == unsharded

    def test_info_reports_counters_disk_and_summary(self, app, reference):
        status, _, body = wsgi_get(app, "/info")
        assert status == 200
        info = json.loads(body)
        ref = json.loads(payloads.dumps(payloads.info_payload(reference)))
        for field in ("cells", "index_names", "mode", "backend",
                      "defined_cells_per_index", "disk"):
            assert info[field] == ref[field]
        assert info["disk"]["snapshot_bytes"] > 0
        assert info["disk"]["delta_chain_length"] == 0
        assert {"hits", "misses", "size"} <= set(info["cache"])

    def test_typed_query_coercion(self, tmp_path):
        """int-valued vocabulary items are reachable from the wire."""
        from repro.cube.cell import CellStats
        from repro.cube.coordinates import make_key
        from repro.cube.cube import CubeMetadata, SegregationCube
        from repro.itemsets.items import Item, ItemDictionary, ItemKind

        dictionary = ItemDictionary()
        dictionary.add(Item("g", "F"), ItemKind.SA)
        dictionary.add(Item("n_boards", 2), ItemKind.CA)
        key = make_key([0], [1])
        cube = SegregationCube(
            {key: CellStats(key, 8, 3, 2, {"D": 0.25})},
            dictionary,
            CubeMetadata(
                index_names=["D"], min_population=1, min_minority=1,
                n_rows=8, n_units=2, mode="all", backend="test",
            ),
        )
        dump_snapshot(cube, tmp_path / "typed")
        typed_app = make_app(tmp_path / "typed")
        status, _, body = wsgi_get(
            typed_app, "/cell?sa=g%3DF&ca=n_boards%3D2"
        )
        assert status == 200
        assert json.loads(body)["population"] == 8


class TestErrorSurface:
    def test_unknown_endpoint_404(self, app):
        status, _, body = wsgi_get(app, "/nope")
        assert status == 404
        assert json.loads(body)["status"] == 404

    def test_missing_cell_404_null(self, app):
        # Two cities in one cell: valid vocabulary, impossible cell.
        status, _, body = wsgi_get(
            app, "/cell?ca=city%3DRivertown&ca=city%3DLakeside"
        )
        assert (status, body) == (404, b"null")

    def test_malformed_coordinate_400(self, app):
        status, _, body = wsgi_get(app, "/slice?sa=noequals")
        assert status == 400
        assert "attribute=value" in json.loads(body)["error"]

    def test_unknown_coordinate_value_400(self, app):
        status, _, body = wsgi_get(app, "/slice?ca=city%3DNowhere")
        assert status == 400
        assert "unknown coordinate" in json.loads(body)["error"]

    def test_non_integer_param_400(self, app):
        status, _, body = wsgi_get(app, "/top?k=many")
        assert status == 400
        assert "k" in json.loads(body)["error"]

    def test_unknown_index_400(self, app):
        for query in ("/top?index=NOPE", "/trend?index=NOPE",
                      "/pivot?index=NOPE&rows=ethnicity&cols=city"):
            status, _, body = wsgi_get(app, query)
            assert status == 400, query
            assert "unknown index" in json.loads(body)["error"]

    def test_missing_pivot_attrs_400(self, app):
        status, _, body = wsgi_get(app, "/pivot?index=D")
        assert status == 400
        assert "rows" in json.loads(body)["error"]

    def test_trend_without_timeline_400(self, app):
        status, _, body = wsgi_get(app, "/trend?index=D")
        assert status == 400
        assert "timeline" in json.loads(body)["error"]

    def test_wrong_method_405(self, app):
        status, _, _ = wsgi_get(app, "/top", method="POST")
        assert status == 405
        status, _, _ = wsgi_get(app, "/refresh", method="GET")
        assert status == 405

    def test_head_has_headers_but_no_body(self, app):
        get_status, get_headers, get_body = wsgi_get(app, "/info")
        status, headers, body = wsgi_get(app, "/info", method="HEAD")
        assert status == get_status == 200
        assert body == b""
        assert int(headers["Content-Length"]) > 0


class TestTimelineServing:
    @pytest.fixture()
    def timeline(self, built, schools, tmp_path):
        table, schema = schools
        root = tmp_path / "tl"
        dump_into_timeline(root, 0, built)
        dump_into_timeline(root, 1, built, parent_date=0, parent=built)
        one_city = table.filter(
            table.categorical("city").mask_eq("Rivertown")
        )
        next_cube = build_cube(
            one_city, schema, min_population=10, min_minority=3
        )
        return root, next_cube

    def test_dates_trend_and_refresh(self, built, timeline):
        root, next_cube = timeline
        timeline_app = make_app(root)

        status, _, body = wsgi_get(timeline_app, "/dates")
        assert status == 200
        assert json.loads(body) == {"dates": [0, 1], "served_date": 1}

        status, _, body = wsgi_get(timeline_app, f"/trend?index=D&{SA}")
        assert status == 200
        series = json.loads(body)
        assert [entry["date"] for entry in series] == [0, 1]

        # Nothing new: refresh is a no-op.
        status, _, body = wsgi_get(timeline_app, "/refresh", method="POST")
        assert (status, json.loads(body)) == (200, {"refreshed": False})

        # Publish date 2, refresh, and the served surface must move.
        dump_into_timeline(root, 2, next_cube, parent_date=1, parent=built)
        status, _, body = wsgi_get(timeline_app, "/refresh", method="POST")
        assert (status, json.loads(body)) == (200, {"refreshed": True})
        _, _, body = wsgi_get(timeline_app, "/dates")
        assert json.loads(body) == {"dates": [0, 1, 2], "served_date": 2}
        _, _, body = wsgi_get(timeline_app, f"/trend?index=D&{SA}")
        assert [entry["date"] for entry in json.loads(body)] == [0, 1, 2]
        info = json.loads(wsgi_get(timeline_app, "/info")[2])
        assert info["cache"]["generation"] == 1
        assert set(info["timeline"]["per_date"]) == {"0", "1", "2"}
        assert info["timeline"]["per_date"]["2"]["delta_chain_length"] == 2

    def test_explicit_date_app(self, timeline):
        root, _ = timeline
        app0 = make_app(root, date=0)
        _, _, body = wsgi_get(app0, "/dates")
        assert json.loads(body)["served_date"] == 0


class TestServerPlumbing:
    def test_make_app_accepts_service_instance(self, reference):
        app = make_app(reference)
        assert app.service is reference
        status, _, body = wsgi_get(app, "/top?k=3")
        assert status == 200
        assert body == payloads.dumps(payloads.top_payload(reference, k=3))

    def test_serve_binds_and_answers_over_a_socket(self, snapshot_dir):
        import threading
        import urllib.request

        server = serve(snapshot_dir, port=0, quiet=True)
        port = server.server_address[1]
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/top?k=3", timeout=10
            ) as response:
                assert response.status == 200
                payload = json.loads(response.read())
            assert [f["rank"] for f in payload] == [1, 2, 3]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_cli_serve_subcommand_wired(self):
        from repro.serve.__main__ import build_parser

        args = build_parser().parse_args(
            ["snap", "serve", "--port", "0", "--cache-size", "16"]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.cache_size == 16

    def test_cli_routes_sharded_directories(self, sharded_dir, capsys):
        from repro.serve.__main__ import main as serve_main

        assert serve_main([str(sharded_dir), "top", "-k", "3",
                           "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [f["rank"] for f in payload] == [1, 2, 3]
        # rows needs the single-cube view.
        assert serve_main([str(sharded_dir), "rows"]) == 2
        assert "error:" in capsys.readouterr().err
