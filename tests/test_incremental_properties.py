"""Property-based tests of the incremental engine and timeline compaction.

Three invariants, driven by hypothesis over random churn and random
compaction orders:

1. However churn lands, the merged carried+recomputed cube is
   bit-identical (``check_same_cells`` at atol=0) to a from-scratch
   build — in both ``all`` and ``closed`` modes.
2. Compaction is idempotent: once a date is a full root, compacting it
   again (even forced) is a no-op.
3. ``CubeTimeline.at`` parity holds before and after compacting *any*
   subset of dates in *any* order, memory-mapped and in-memory alike.
"""

from __future__ import annotations

import functools
import shutil
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.cube.incremental import TemporalCubeEngine
from repro.data.synthetic import random_final_table
from repro.itemsets.transactions import encode_table
from repro.store import (
    CubeTimeline,
    compact_date,
    compact_timeline,
    delta_chain_length,
    dump_into_timeline,
)

N_ROWS = 800
LIMITS = {"min_population": 15, "min_minority": 4,
          "max_sa_items": 2, "max_ca_items": 2}


@functools.lru_cache(maxsize=1)
def _database():
    table, schema = random_final_table(
        N_ROWS, 8, sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 3, "s": 3}, seed=41, skew=0.3,
    )
    return encode_table(table, schema)


def _builder(mode):
    return SegregationDataCubeBuilder(engine="incremental", mode=mode,
                                      **LIMITS)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    mode=st.sampled_from(["all", "closed"]),
    n_steps=st.integers(min_value=1, max_value=3),
)
def test_random_churn_is_bit_exact_vs_scratch(seed, mode, n_steps):
    db = _database()
    rng = np.random.default_rng(seed)
    valid = np.ones(N_ROWS, dtype=bool)
    engine = TemporalCubeEngine(db, _builder(mode))
    state = engine.build_at(valid, 0)
    for step in range(1, n_steps + 1):
        n_flips = int(rng.integers(1, 50))
        flips = rng.choice(N_ROWS, size=n_flips, replace=False)
        valid = valid.copy()
        valid[flips] = ~valid[flips]
        state = engine.update(state, valid, step)
        scratch = SegregationDataCubeBuilder(
            mode=mode, **LIMITS
        ).build_from_transactions(db.restrict(valid))
        assert check_same_cells(state.cube, scratch, atol=0.0) == []
        extra = state.cube.metadata.extra
        assert extra["n_carried_cells"] \
            + extra["n_carried_cells_within_affected"] \
            + extra["n_recomputed_cells"] == len(state.cube)


@functools.lru_cache(maxsize=1)
def _timeline_states():
    db = _database()
    rng = np.random.default_rng(97)
    engine = TemporalCubeEngine(db, _builder("closed"))
    dated = []
    valid = np.ones(N_ROWS, dtype=bool)
    for date in range(4):
        if date:
            flips = rng.choice(N_ROWS, size=25, replace=False)
            valid = valid.copy()
            valid[flips] = ~valid[flips]
        dated.append((date, valid))
    return engine.run(dated)


@functools.lru_cache(maxsize=1)
def _timeline_template() -> Path:
    root = Path(tempfile.mkdtemp(prefix="tl-prop-")) / "timeline"
    root.mkdir()
    previous = None
    for state in _timeline_states():
        dump_into_timeline(
            root, state.date, state.cube,
            parent_date=None if previous is None else previous.date,
            parent=None if previous is None else previous.cube,
        )
        previous = state
    return root


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    order=st.permutations([1, 2, 3]),
    n_compact=st.integers(min_value=0, max_value=3),
)
def test_timeline_parity_survives_any_compaction_order(order, n_compact):
    states = _timeline_states()
    scratch_root = Path(tempfile.mkdtemp(prefix="tl-prop-run-"))
    root = scratch_root / "timeline"
    try:
        shutil.copytree(_timeline_template(), root)
        for date in list(order)[:n_compact]:
            compact_date(root, date, force=True)
            assert delta_chain_length(root / str(date)) == 0
            # Idempotent: a fresh full root never re-compacts.
            assert not compact_date(root, date, force=True)
        for mmap in (True, False):
            timeline = CubeTimeline(root, mmap=mmap)
            for state in states:
                assert check_same_cells(
                    state.cube, timeline.at(state.date), atol=0.0
                ) == []
    finally:
        shutil.rmtree(scratch_root, ignore_errors=True)


def test_full_force_compaction_is_idempotent():
    scratch_root = Path(tempfile.mkdtemp(prefix="tl-prop-idem-"))
    root = scratch_root / "timeline"
    try:
        shutil.copytree(_timeline_template(), root)
        first = compact_timeline(root, force=True)
        assert first == [1, 2, 3]
        assert compact_timeline(root, force=True) == []
        timeline = CubeTimeline(root)
        for state in _timeline_states():
            assert check_same_cells(
                state.cube, timeline.at(state.date), atol=0.0
            ) == []
    finally:
        shutil.rmtree(scratch_root, ignore_errors=True)
