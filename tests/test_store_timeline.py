"""Tests of delta snapshots, the cube timeline, and timeline serving."""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.compare import timeline_series
from repro.cube.cube import check_same_cells
from repro.cube.incremental import TemporalCubeEngine
from repro.data.synthetic import random_temporal_final_table
from repro.errors import SnapshotError
from repro.etl.diff import valid_at
from repro.itemsets.transactions import encode_table
from repro.serve.__main__ import main as serve_main
from repro.serve.service import CubeService
from repro.store import (
    CubeTimeline,
    MANIFEST_NAME,
    dump_delta_snapshot,
    dump_into_timeline,
    dump_snapshot,
    open_snapshot,
    timeline_dates,
    validate_snapshot,
)

DATES = (0, 1, 2)
LIMITS = {"min_population": 20, "min_minority": 5,
          "max_sa_items": 2, "max_ca_items": 2}


@pytest.fixture(scope="module")
def states():
    table, schema, starts, ends = random_temporal_final_table(
        n_rows=3000, n_units=12, dates=DATES,
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 4, "s": 3},
        multi_valued_ca={"mv": 3},
        seed=5, skew=0.5,
    )
    db = encode_table(table, schema)
    engine = TemporalCubeEngine(
        db, SegregationDataCubeBuilder(engine="incremental", **LIMITS)
    )
    return engine.run(
        [(d, valid_at(starts, ends, d)) for d in DATES]
    )


@pytest.fixture()
def timeline_dir(states, tmp_path):
    root = tmp_path / "timeline"
    previous = None
    for state in states:
        dump_into_timeline(
            root, state.date, state.cube,
            parent_date=None if previous is None else previous.date,
            parent=None if previous is None else previous.cube,
        )
        previous = state
    return root


class TestDeltaSnapshot:
    def test_chain_reopen_is_bit_exact(self, states, timeline_dir):
        for state in states:
            reopened = open_snapshot(timeline_dir / str(state.date))
            assert check_same_cells(state.cube, reopened, atol=0.0) == []

    def test_delta_manifest_records_parent(self, timeline_dir):
        manifest = validate_snapshot(timeline_dir / "1")
        assert manifest.delta is not None
        assert manifest.delta["parent"] == "../0"
        assert manifest.delta["n_superseded"] >= 0
        assert validate_snapshot(timeline_dir / "0").delta is None

    def test_delta_stores_fewer_cells_than_full(self, states, timeline_dir):
        full = validate_snapshot(timeline_dir / "0")
        delta = validate_snapshot(timeline_dir / "1")
        assert delta.n_cells < full.n_cells
        assert delta.n_cells == len(states[1].cube) - (
            full.n_cells - int(delta.delta["n_superseded"])
        )

    def test_timeline_is_relocatable(self, states, timeline_dir, tmp_path):
        moved = tmp_path / "elsewhere" / "tl"
        shutil.copytree(timeline_dir, moved)
        reopened = open_snapshot(moved / "2")
        assert check_same_cells(states[2].cube, reopened, atol=0.0) == []

    def test_no_mmap_open_matches(self, states, timeline_dir):
        reopened = open_snapshot(timeline_dir / "2", mmap=False)
        assert check_same_cells(states[2].cube, reopened, atol=0.0) == []

    def test_identical_cube_produces_empty_delta(self, states, tmp_path):
        cube = states[0].cube
        dump_snapshot(cube, tmp_path / "full")
        dump_delta_snapshot(cube, tmp_path / "same", tmp_path / "full")
        manifest = validate_snapshot(tmp_path / "same")
        assert manifest.n_cells == 0
        assert manifest.delta["n_superseded"] == 0
        reopened = open_snapshot(tmp_path / "same")
        assert check_same_cells(cube, reopened, atol=0.0) == []

    def test_grandchild_chain_resolves(self, states, timeline_dir):
        # 2 -> 1 -> 0 is already a two-deep chain; depth recorded.
        cube = open_snapshot(timeline_dir / "2")
        snapshot_info = cube.metadata.extra["snapshot"]
        assert snapshot_info["delta_depth"] == 1
        assert snapshot_info["parent"].endswith("1")


class TestDeltaCorruption:
    def test_missing_parent_rejected(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "parent")
        dump_delta_snapshot(
            states[1].cube, tmp_path / "child", tmp_path / "parent"
        )
        shutil.rmtree(tmp_path / "parent")
        with pytest.raises(SnapshotError, match="cannot resolve its parent"):
            open_snapshot(tmp_path / "child")

    def test_self_parent_cycle_rejected(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "parent")
        child = tmp_path / "child"
        dump_delta_snapshot(states[1].cube, child, tmp_path / "parent")
        payload = json.loads((child / MANIFEST_NAME).read_text())
        payload["delta"]["parent"] = "."
        (child / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="cyclic"):
            open_snapshot(child)

    def test_two_node_cycle_rejected(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "root")
        dump_delta_snapshot(
            states[1].cube, tmp_path / "d1", tmp_path / "root"
        )
        dump_delta_snapshot(
            states[2].cube, tmp_path / "d2", tmp_path / "d1"
        )
        payload = json.loads((tmp_path / "d1" / MANIFEST_NAME).read_text())
        payload["delta"]["parent"] = "../d2"
        (tmp_path / "d1" / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="cyclic"):
            open_snapshot(tmp_path / "d2")

    def test_superseded_mask_mismatch_rejected(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "parent")
        child = tmp_path / "child"
        dump_delta_snapshot(states[1].cube, child, tmp_path / "parent")
        manifest = validate_snapshot(child)
        if manifest.delta["n_superseded"] == 0:
            pytest.skip("delta supersedes nothing")
        masks = np.load(child / "superseded_sa.npy")
        masks = masks.copy()
        masks[0] = np.uint64(0xDEADBEEF)
        np.save(child / "superseded_sa.npy", masks)
        with pytest.raises(SnapshotError, match="mask mismatch"):
            open_snapshot(child)

    def test_missing_superseded_array_rejected(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "parent")
        child = tmp_path / "child"
        dump_delta_snapshot(states[1].cube, child, tmp_path / "parent")
        payload = json.loads((child / MANIFEST_NAME).read_text())
        del payload["arrays"]["superseded_sa"]
        (child / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="superseded_sa"):
            validate_snapshot(child)

    def test_malformed_delta_section_rejected(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "parent")
        child = tmp_path / "child"
        dump_delta_snapshot(states[1].cube, child, tmp_path / "parent")
        payload = json.loads((child / MANIFEST_NAME).read_text())
        payload["delta"] = {"parent": "../parent"}   # n_superseded gone
        (child / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="malformed delta"):
            validate_snapshot(child)

    def test_delta_arrays_without_delta_section_rejected(
        self, states, tmp_path
    ):
        dump_snapshot(states[0].cube, tmp_path / "parent")
        child = tmp_path / "child"
        dump_delta_snapshot(states[1].cube, child, tmp_path / "parent")
        payload = json.loads((child / MANIFEST_NAME).read_text())
        payload["delta"] = None   # superseded_* arrays stay listed
        (child / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="without a delta section"):
            validate_snapshot(child)

    def test_mismatched_parent_cube_rejected(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "parent")
        with pytest.raises(SnapshotError, match="does not match"):
            dump_delta_snapshot(
                states[2].cube, tmp_path / "child", tmp_path / "parent",
                parent=states[1].cube,   # stale: disk holds states[0]
            )

    def test_matching_parent_cube_accepted(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "parent")
        dump_delta_snapshot(
            states[1].cube, tmp_path / "child", tmp_path / "parent",
            parent=states[0].cube,
        )
        reopened = open_snapshot(tmp_path / "child")
        assert check_same_cells(states[1].cube, reopened, atol=0.0) == []

    def test_parent_value_drift_caught_by_digest(self, states, tmp_path):
        # Keys unchanged, values silently rewritten in the parent after
        # the delta was dumped: only the content digest can catch it.
        dump_snapshot(states[0].cube, tmp_path / "parent")
        child = tmp_path / "child"
        dump_delta_snapshot(states[1].cube, child, tmp_path / "parent")
        populations = np.load(tmp_path / "parent" / "population.npy").copy()
        populations[0] += 1
        np.save(tmp_path / "parent" / "population.npy", populations)
        with pytest.raises(SnapshotError, match="digest"):
            open_snapshot(child)

    def test_delta_onto_itself_rejected(self, states, tmp_path):
        target = tmp_path / "snap"
        dump_snapshot(states[0].cube, target)
        with pytest.raises(SnapshotError, match="its own parent"):
            dump_delta_snapshot(states[1].cube, target, target)
        # The refusal must leave the original snapshot intact.
        reopened = open_snapshot(target)
        assert check_same_cells(states[0].cube, reopened, atol=0.0) == []

    def test_superseded_count_mismatch_rejected(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "parent")
        child = tmp_path / "child"
        dump_delta_snapshot(states[1].cube, child, tmp_path / "parent")
        payload = json.loads((child / MANIFEST_NAME).read_text())
        payload["delta"]["n_superseded"] = (
            int(payload["delta"]["n_superseded"]) + 7
        )
        (child / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="superseded"):
            open_snapshot(child)


class TestCubeTimeline:
    def test_dates_discovered_and_sorted(self, timeline_dir):
        assert timeline_dates(timeline_dir) == list(DATES)
        timeline = CubeTimeline(timeline_dir)
        assert timeline.dates == list(DATES)
        assert len(timeline) == len(DATES)
        assert 1 in timeline and 99 not in timeline

    def test_at_caches_and_matches(self, states, timeline_dir):
        timeline = CubeTimeline(timeline_dir)
        for state in states:
            cube = timeline.at(state.date)
            assert cube is timeline.at(state.date)
            assert check_same_cells(state.cube, cube, atol=0.0) == []
        assert len(timeline.latest()) == len(states[-1].cube)

    def test_unknown_date_rejected(self, timeline_dir):
        with pytest.raises(SnapshotError, match="no snapshot for date"):
            CubeTimeline(timeline_dir).at(1234)

    def test_iteration_in_date_order(self, timeline_dir):
        assert [date for date, _ in CubeTimeline(timeline_dir)] == list(DATES)

    def test_empty_or_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="does not exist"):
            CubeTimeline(tmp_path / "nope")
        (tmp_path / "empty").mkdir()
        with pytest.raises(SnapshotError, match="no dated snapshots"):
            CubeTimeline(tmp_path / "empty")

    def test_non_dated_children_ignored(self, timeline_dir):
        (timeline_dir / "notes").mkdir()
        (timeline_dir / "notes" / "readme.txt").write_text("hi")
        assert timeline_dates(timeline_dir) == list(DATES)

    def test_chain_walk_resolves_each_snapshot_once(
        self, timeline_dir, monkeypatch
    ):
        import repro.store.snapshot as snapshot_module

        validated: "list[str]" = []
        original = snapshot_module.validate_snapshot

        def counting(path):
            validated.append(str(path))
            return original(path)

        monkeypatch.setattr(snapshot_module, "validate_snapshot", counting)
        timeline = CubeTimeline(timeline_dir)
        for date in timeline.dates:
            timeline.at(date)
        # Without the shared resolution cache, date k re-validates its
        # whole parent chain: 1+2+3 = 6 validations for 3 dates.
        assert len(validated) == len(DATES)


class TestTimelineSerying:
    def test_service_routes_to_latest_by_default(self, states, timeline_dir):
        service = CubeService(timeline_dir)
        assert service.date == DATES[-1]
        assert service.dates() == list(DATES)
        assert len(service.cube) == len(states[-1].cube)
        info = service.info()
        assert info["timeline"]["served_date"] == DATES[-1]

    def test_service_routes_to_requested_date(self, states, timeline_dir):
        service = CubeService(timeline_dir, date=DATES[0])
        assert check_same_cells(states[0].cube, service.cube,
                                atol=0.0) == []

    def test_date_on_single_snapshot_rejected(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "snap")
        with pytest.raises(SnapshotError, match="timeline"):
            CubeService(tmp_path / "snap", date=3)
        with pytest.raises(SnapshotError, match="timeline"):
            CubeService(states[0].cube, date=3)

    def test_service_trend_walks_all_dates(self, timeline_dir):
        service = CubeService(timeline_dir)
        series = service.trend("D", sa={"g": "g0"})
        assert [date for date, _ in series] == list(DATES)
        assert all(np.isfinite(v) or np.isnan(v) for _, v in series)

    def test_trend_requires_timeline(self, states, tmp_path):
        dump_snapshot(states[0].cube, tmp_path / "snap")
        service = CubeService(tmp_path / "snap")
        with pytest.raises(SnapshotError, match="timeline"):
            service.trend("D", sa={"g": "g0"})

    def test_cli_top_with_date(self, timeline_dir, capsys):
        assert serve_main(
            [str(timeline_dir), "top", "--date", "1", "--json", "-k", "3"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 3

    def test_cli_trend(self, timeline_dir, capsys):
        assert serve_main(
            [str(timeline_dir), "trend", "--index", "D",
             "--sa", "g=g0", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["date"] for entry in payload] == list(DATES)

    def test_cli_info_shows_timeline(self, timeline_dir, capsys):
        assert serve_main([str(timeline_dir), "info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["timeline"]["dates"] == list(DATES)


class TestTimelineSeries:
    def test_series_align_across_dates(self, timeline_dir):
        timeline = CubeTimeline(timeline_dir)
        series = timeline_series(timeline, index_name="D", min_points=2)
        assert series
        for entry in series:
            assert entry.dates == DATES
            assert len(entry.values) == len(DATES)
            assert entry.n_defined >= 2
        # Sorted by spread, biggest movers first.
        spreads = [s.spread for s in series if not np.isnan(s.spread)]
        assert spreads == sorted(spreads, reverse=True)

    def test_series_values_match_cube_cells(self, states, timeline_dir):
        timeline = CubeTimeline(timeline_dir)
        series = timeline_series(timeline, index_name="D", min_points=1)
        by_description = {s.description: s for s in series}
        cube = states[0].cube
        table = cube.table
        col = table.columns["D"]
        checked = 0
        for i in np.flatnonzero(~np.isnan(col))[:10]:
            from repro.cube.compare import _aligned_key, describe_aligned

            description = describe_aligned(_aligned_key(cube, table.keys[i]))
            entry = by_description[description]
            position = entry.dates.index(DATES[0])
            assert entry.values[position] == float(col[i])
            assert entry.populations[position] == int(table.population[i])
            checked += 1
        assert checked > 0

    def test_plain_pairs_accepted(self, states):
        pairs = [(s.date, s.cube) for s in states]
        series = timeline_series(pairs, index_name="D")
        assert series and series[0].index_name == "D"

    def test_min_minority_guard(self, timeline_dir):
        timeline = CubeTimeline(timeline_dir)
        strict = timeline_series(timeline, index_name="D",
                                 min_minority=10 ** 9)
        assert strict == []
