"""Tests of timeline auto-compaction, the manifest, and staleness.

The contract: compacting a date re-roots it onto a fresh full snapshot
that is *bit-identical* through ``CubeTimeline.at`` — crash-safely (the
old chain stays live until the replacement validates), idempotently
(a full root never re-compacts), and with every measurement the policy
used recorded in ``timeline.json``.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.cube.incremental import TemporalCubeEngine
from repro.data.synthetic import random_temporal_final_table
from repro.errors import SnapshotError
from repro.etl.diff import valid_at
from repro.itemsets.transactions import encode_table
from repro.serve.service import CubeService
from repro.store import (
    TIMELINE_MANIFEST_NAME,
    CompactionPolicy,
    CubeTimeline,
    compact_date,
    compact_timeline,
    delta_chain_length,
    dump_into_timeline,
    open_snapshot,
    read_timeline_manifest,
    timeline_dates,
)
from repro.store.compact import main as compact_main

DATES = (0, 1, 2, 3)
LIMITS = {"min_population": 20, "min_minority": 5,
          "max_sa_items": 2, "max_ca_items": 2}

#: A policy whose only live trigger is chain length — open-latency and
#: byte-ratio thresholds are pushed out of reach so tests stay
#: deterministic on any hardware.
CHAIN_ONLY = dict(max_open_ms=1e9, min_byte_ratio=10.0)


@pytest.fixture(scope="module")
def states():
    table, schema, starts, ends = random_temporal_final_table(
        n_rows=3000, n_units=12, dates=DATES,
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 4, "s": 3},
        multi_valued_ca={"mv": 3},
        seed=5, skew=0.5,
    )
    db = encode_table(table, schema)
    engine = TemporalCubeEngine(
        db, SegregationDataCubeBuilder(engine="incremental", mode="closed",
                                       **LIMITS)
    )
    return engine.run([(d, valid_at(starts, ends, d)) for d in DATES])


def _dump(states, root, compact=None):
    root.mkdir(parents=True, exist_ok=True)
    previous = None
    for state in states:
        dump_into_timeline(
            root, state.date, state.cube,
            parent_date=None if previous is None else previous.date,
            parent=None if previous is None else previous.cube,
            compact=compact,
        )
        previous = state
    return root


@pytest.fixture()
def timeline_dir(states, tmp_path):
    return _dump(states, tmp_path / "timeline")


class TestCompactionPolicy:
    def test_full_root_never_compacts(self):
        policy = CompactionPolicy(max_chain=0, max_open_ms=0.0,
                                  min_byte_ratio=0.0)
        assert not policy.should_compact(0, open_ms=1e9, own_bytes=10,
                                         root_bytes=1)

    def test_chain_trigger(self):
        policy = CompactionPolicy(max_chain=3, **CHAIN_ONLY)
        assert not policy.should_compact(3)
        assert policy.should_compact(4)

    def test_open_latency_trigger(self):
        policy = CompactionPolicy(max_chain=10**6, max_open_ms=50.0,
                                  min_byte_ratio=10.0)
        assert not policy.should_compact(1, open_ms=49.0)
        assert policy.should_compact(1, open_ms=51.0)
        assert not policy.should_compact(1, open_ms=None)

    def test_byte_ratio_trigger(self):
        policy = CompactionPolicy(max_chain=10**6, max_open_ms=1e9,
                                  min_byte_ratio=0.5)
        assert not policy.should_compact(1, own_bytes=40, root_bytes=100)
        assert policy.should_compact(1, own_bytes=60, root_bytes=100)
        assert not policy.should_compact(1, own_bytes=60, root_bytes=None)


class TestTimelineManifest:
    def test_publish_records_stats_and_wall_time(self, timeline_dir):
        manifest = read_timeline_manifest(timeline_dir)
        assert manifest["last_publish_at"] is not None
        assert set(manifest["dates"]) == {str(d) for d in DATES}
        for d in DATES:
            entry = manifest["dates"][str(d)]
            assert entry["chain_length"] == d     # 0 full, then 1,2,3
            assert entry["own_bytes"] > 0

    def test_missing_manifest_reads_as_empty(self, tmp_path):
        manifest = read_timeline_manifest(tmp_path)
        assert manifest["last_publish_at"] is None
        assert manifest["dates"] == {}

    def test_corrupt_manifest_raises(self, timeline_dir):
        (timeline_dir / TIMELINE_MANIFEST_NAME).write_text("{nope")
        with pytest.raises(SnapshotError, match="unreadable"):
            read_timeline_manifest(timeline_dir)

    def test_malformed_manifest_raises(self, timeline_dir):
        (timeline_dir / TIMELINE_MANIFEST_NAME).write_text(
            json.dumps({"dates": [1, 2]})
        )
        with pytest.raises(SnapshotError, match="malformed"):
            read_timeline_manifest(timeline_dir)

    def test_manifest_file_is_not_a_date(self, timeline_dir):
        # timeline.json (and scratch dirs) must stay invisible to readers.
        assert timeline_dates(timeline_dir) == list(DATES)
        assert CubeTimeline(timeline_dir).dates == list(DATES)


class TestCompactDate:
    def test_compact_rewrites_as_full_root(self, states, timeline_dir):
        assert compact_date(timeline_dir, 3, force=True)
        assert delta_chain_length(timeline_dir / "3") == 0
        reopened = open_snapshot(timeline_dir / "3", mmap=False)
        assert check_same_cells(states[3].cube, reopened, atol=0.0) == []

    def test_full_root_is_a_noop_even_forced(self, timeline_dir):
        assert not compact_date(timeline_dir, 0, force=True)
        assert delta_chain_length(timeline_dir / "0") == 0

    def test_compaction_is_idempotent(self, states, timeline_dir):
        assert compact_date(timeline_dir, 2, force=True)
        assert not compact_date(timeline_dir, 2, force=True)
        reopened = open_snapshot(timeline_dir / "2", mmap=False)
        assert check_same_cells(states[2].cube, reopened, atol=0.0) == []

    def test_child_of_compacted_parent_still_resolves(
        self, states, timeline_dir
    ):
        # Re-rooting 2 must leave the 3 -> 2 delta resolvable bit-exactly:
        # superseded keys and digests are row-order independent.
        assert compact_date(timeline_dir, 2, force=True)
        assert delta_chain_length(timeline_dir / "3") == 1
        reopened = open_snapshot(timeline_dir / "3", mmap=False)
        assert check_same_cells(states[3].cube, reopened, atol=0.0) == []

    def test_policy_decides_and_records(self, timeline_dir):
        policy = CompactionPolicy(max_chain=2, **CHAIN_ONLY)
        assert not compact_date(timeline_dir, 1, policy=policy)
        assert compact_date(timeline_dir, 3, policy=policy)
        manifest = read_timeline_manifest(timeline_dir)
        assert manifest["dates"]["1"]["chain_length"] == 1
        assert manifest["dates"]["3"]["chain_length"] == 0

    def test_crash_between_renames_recovers(self, states, timeline_dir):
        # Simulate: old chain renamed away, crash before new root lands.
        (timeline_dir / "3").rename(timeline_dir / "3.pre-compact")
        assert 3 not in timeline_dates(timeline_dir)
        assert compact_date(timeline_dir, 3, force=True)
        reopened = open_snapshot(timeline_dir / "3", mmap=False)
        assert check_same_cells(states[3].cube, reopened, atol=0.0) == []

    def test_stale_scratch_is_cleaned_up(self, states, timeline_dir):
        scratch = timeline_dir / "3.compacting"
        scratch.mkdir()
        (scratch / "junk.npy").write_bytes(b"junk")
        assert compact_date(timeline_dir, 3, force=True)
        assert not scratch.exists()
        reopened = open_snapshot(timeline_dir / "3", mmap=False)
        assert check_same_cells(states[3].cube, reopened, atol=0.0) == []


class TestCompactTimeline:
    def test_force_compacts_every_delta_date(self, states, timeline_dir):
        assert compact_timeline(timeline_dir, force=True) == [1, 2, 3]
        for mmap in (True, False):
            timeline = CubeTimeline(timeline_dir, mmap=mmap)
            for state in states:
                assert check_same_cells(
                    state.cube, timeline.at(state.date), atol=0.0
                ) == []

    def test_ascending_cascade_shortens_descendants_first(
        self, timeline_dir
    ):
        # Compacting 2 (chain 2 > 1) shortens 3's chain to a single hop,
        # so 3 no longer triggers: measured decisions, made in order.
        policy = CompactionPolicy(max_chain=1, **CHAIN_ONLY)
        assert compact_timeline(timeline_dir, policy) == [2]
        assert delta_chain_length(timeline_dir / "3") == 1

    def test_compacted_timeline_round_trips_through_dump(
        self, states, tmp_path
    ):
        policy = CompactionPolicy(max_chain=1, **CHAIN_ONLY)
        root = _dump(states, tmp_path / "inline", compact=policy)
        manifest = read_timeline_manifest(root)
        assert all(
            entry["chain_length"] <= 1
            for entry in manifest["dates"].values()
        )
        timeline = CubeTimeline(root)
        for state in states:
            assert check_same_cells(
                state.cube, timeline.at(state.date), atol=0.0
            ) == []

    def test_relocatable_after_compaction(self, states, timeline_dir,
                                          tmp_path):
        compact_timeline(timeline_dir, force=True)
        moved = tmp_path / "elsewhere" / "tl"
        shutil.copytree(timeline_dir, moved)
        reopened = open_snapshot(moved / "3")
        assert check_same_cells(states[3].cube, reopened, atol=0.0) == []


class TestCompactCli:
    def test_dry_run_touches_nothing(self, timeline_dir, capsys):
        assert compact_main([str(timeline_dir), "--dry-run",
                             "--max-chain", "1",
                             "--max-open-ms", "1e9",
                             "--min-byte-ratio", "10"]) == 0
        out = capsys.readouterr().out
        assert "would compact" in out
        assert delta_chain_length(timeline_dir / "3") == 3

    def test_force_compacts_and_reports(self, states, timeline_dir, capsys):
        assert compact_main([str(timeline_dir), "--force"]) == 0
        out = capsys.readouterr().out
        assert "compacted 3/4 dates" in out
        for d in DATES:
            assert delta_chain_length(timeline_dir / str(d)) == 0
        timeline = CubeTimeline(timeline_dir)
        for state in states:
            assert check_same_cells(
                state.cube, timeline.at(state.date), atol=0.0
            ) == []

    def test_single_date_selection(self, timeline_dir):
        assert compact_main([str(timeline_dir), "--force",
                             "--date", "2"]) == 0
        assert delta_chain_length(timeline_dir / "2") == 0
        assert delta_chain_length(timeline_dir / "1") == 1


class TestServiceStaleness:
    def test_info_reports_staleness(self, timeline_dir):
        service = CubeService(timeline_dir)
        staleness = service.info()["staleness"]
        assert staleness["latest_date"] == 3
        assert staleness["served_date"] == 3
        assert staleness["dates_behind"] == 0
        assert staleness["last_publish_at"] is not None
        assert staleness["seconds_since_publish"] >= 0.0
        assert staleness["chain_lengths"] == {
            "0": 0, "1": 1, "2": 2, "3": 3
        }

    def test_stale_date_counts_dates_behind(self, timeline_dir):
        service = CubeService(timeline_dir, date=1)
        staleness = service.info()["staleness"]
        assert staleness["served_date"] == 1
        assert staleness["dates_behind"] == 2

    def test_chain_lengths_reflect_compaction(self, timeline_dir):
        compact_timeline(timeline_dir, force=True)
        service = CubeService(timeline_dir)
        staleness = service.info()["staleness"]
        assert staleness["chain_lengths"] == {
            "0": 0, "1": 0, "2": 0, "3": 0
        }

    def test_snapshot_service_has_no_staleness(self, states, tmp_path):
        from repro.store import dump_snapshot

        dump_snapshot(states[0].cube, tmp_path / "snap")
        info = CubeService(tmp_path / "snap").info()
        assert "staleness" not in info
