"""Tests of the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import vocab
from repro.data.estonia import (
    EstoniaConfig,
    estonia_snapshot_table,
    generate_estonia,
)
from repro.data.italy import (
    ItalyConfig,
    generate_italy,
    italy_tabular_individuals,
)
from repro.data.schools import SchoolsConfig, generate_schools
from repro.data.synthetic import (
    checkerboard_table,
    planted_counts,
    planted_table,
    random_bipartite_world,
    random_final_table,
    uniform_table,
)
from repro.errors import ReproError
from repro.indexes.binary import dissimilarity


class TestVocab:
    def test_twenty_sectors(self):
        assert len(vocab.SECTORS) == 20
        assert set(vocab.SECTOR_WEIGHTS) == set(vocab.SECTORS)
        assert set(vocab.SECTOR_FEMALE_RATE) == set(vocab.SECTORS)

    def test_provinces_have_regions(self):
        for province, region in vocab.PROVINCES:
            assert region in vocab.REGIONS
            assert vocab.province_region(province) == region
        assert set(vocab.PROVINCE_WEIGHTS) == {p for p, _ in vocab.PROVINCES}

    def test_female_rates_are_probabilities(self):
        for rate in vocab.SECTOR_FEMALE_RATE.values():
            assert 0 < rate < 1


class TestPlanted:
    def test_planted_counts_exact(self):
        counts = planted_counts([10, 10], [0.8, 0.2])
        assert counts.m.tolist() == [8, 2]

    def test_planted_table_realises_counts(self):
        planted = planted_table([10, 20], [0.5, 0.25])
        table = planted.table
        assert len(table) == 30
        units = table.ints("unitID").data
        minority = table.categorical("gender").mask_eq("F")
        assert np.bincount(units).tolist() == [10, 20]
        assert np.bincount(units[minority]).tolist() == [5, 5]

    def test_checkerboard_is_fully_segregated(self):
        planted = checkerboard_table(4, 25)
        assert dissimilarity(planted.counts) == pytest.approx(1.0)

    def test_checkerboard_validation(self):
        with pytest.raises(ReproError):
            checkerboard_table(3, 10)

    def test_uniform_is_unsegregated(self):
        planted = uniform_table(5, 10, share=0.3)
        assert dissimilarity(planted.counts) == pytest.approx(0.0)

    def test_uniform_validation(self):
        with pytest.raises(ReproError):
            uniform_table(5, 10, share=0.33)
        with pytest.raises(ReproError):
            uniform_table(5, 10, share=1.5)

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            planted_counts([10], [0.5, 0.5])


class TestRandomFinalTable:
    def test_shapes_and_schema(self):
        table, schema = random_final_table(
            100, 4, multi_valued_ca={"mv": 3}, seed=1
        )
        assert len(table) == 100
        assert schema.unit_name == "unitID"
        assert "mv" in schema.ca_names
        schema.validate(table)

    def test_seed_reproducibility(self):
        a, _ = random_final_table(50, 3, seed=9)
        b, _ = random_final_table(50, 3, seed=9)
        assert a.categorical("gender").values() == (
            b.categorical("gender").values()
        )

    def test_invalid_sizes(self):
        with pytest.raises(ReproError):
            random_final_table(0, 3)


class TestItaly:
    def test_structure(self, italy_small):
        ds = italy_small
        assert ds.n_groups == 400
        assert ds.n_individuals > 400
        assert len(ds.membership) >= ds.n_groups
        ds.individuals_schema.validate(ds.individuals)
        ds.groups_schema.validate(ds.groups)

    def test_overall_female_share_plausible(self, italy_small):
        genders = italy_small.individuals.categorical("gender").values()
        share = genders.count("F") / len(genders)
        assert 0.1 < share < 0.4

    def test_sector_bias_planted(self):
        ds = generate_italy(ItalyConfig(n_companies=3000, seed=1))
        seats, _ = italy_tabular_individuals(ds)
        sectors = seats.categorical("sector")
        genders = seats.categorical("gender")
        females = genders.mask_eq("F")

        def share(sector):
            mask = sectors.mask_eq(sector)
            if mask.sum() == 0:
                return None
            return float((females & mask).sum() / mask.sum())

        construction = share("construction")
        education = share("education")
        assert construction is not None and education is not None
        assert education > construction + 0.1

    def test_interlocks_exist(self, italy_small):
        bipartite = italy_small.bipartite()
        from repro.graph.bipartite import project_onto_groups

        result = project_onto_groups(bipartite)
        assert result.graph.n_edges > 0

    def test_seed_reproducibility(self):
        a = generate_italy(ItalyConfig(n_companies=50, seed=3))
        b = generate_italy(ItalyConfig(n_companies=50, seed=3))
        assert a.individuals.categorical("gender").values() == (
            b.individuals.categorical("gender").values()
        )
        assert a.membership.snapshot() == b.membership.snapshot()

    def test_invalid_config(self):
        with pytest.raises(ReproError):
            generate_italy(ItalyConfig(n_companies=0))

    def test_tabular_join_shape(self, italy_small):
        seats, schema = italy_tabular_individuals(italy_small)
        assert len(seats) == len(italy_small.membership)
        assert "sector" in schema.ca_names


class TestEstonia:
    @pytest.fixture(scope="class")
    def estonia(self):
        return generate_estonia(EstoniaConfig(n_companies=600, seed=2))

    def test_structure(self, estonia):
        assert estonia.n_groups == 600
        estonia.individuals_schema.validate(estonia.individuals)
        estonia.groups_schema.validate(estonia.groups)

    def test_membership_has_intervals(self, estonia):
        spans = [e.interval for e in estonia.membership]
        assert all(i.start is not None and i.end is not None for i in spans)

    def test_snapshots_grow_over_time(self, estonia):
        early = len(estonia.membership.snapshot(1996))
        late = len(estonia.membership.snapshot(2012))
        assert late > early

    def test_female_share_drifts_up(self):
        config = EstoniaConfig(n_companies=4000, seed=5)
        ds = generate_estonia(config)
        genders = ds.individuals.categorical("gender")

        def share(year):
            pairs = ds.membership.snapshot(year)
            directors = {d for d, _ in pairs}
            values = [genders[d] for d in directors]
            return values.count("F") / len(values)

        assert share(2014) > share(1997) + 0.03

    def test_snapshot_table(self, estonia):
        table, schema = estonia_snapshot_table(estonia, 2005)
        assert len(table) == len(estonia.membership.snapshot(2005))
        assert schema.ca_names == ["county", "sector"]

    def test_empty_snapshot_rejected(self, estonia):
        with pytest.raises(ReproError):
            estonia_snapshot_table(estonia, 1800)

    def test_invalid_year_range(self):
        with pytest.raises(ReproError):
            generate_estonia(EstoniaConfig(first_year=2000, last_year=2000))


class TestSchools:
    def test_structure(self, schools):
        table, schema = schools
        assert len(table) == 2 * 6 * 120
        schema.validate(table)
        assert schema.unit_name == "school"

    def test_rivertown_segregated_lakeside_not(self, schools):
        table, _ = schools
        from repro.indexes.counts import UnitCounts

        city = table.categorical("city")
        units = table.ints("school").data
        minority = table.categorical("ethnicity").mask_eq("minority")
        for name, bound in (("Rivertown", 0.7), ("Lakeside", 0.1)):
            mask = city.mask_eq(name)
            counts = UnitCounts.from_assignments(units[mask], minority[mask])
            d = dissimilarity(counts)
            if name == "Rivertown":
                assert d > bound
            else:
                assert d < bound

    def test_custom_config(self):
        table, _ = generate_schools(SchoolsConfig(students_per_school=10,
                                                  schools_per_city=2))
        assert len(table) == 40


class TestRandomBipartiteWorld:
    def test_shape_and_determinism(self):
        a, attrs_a = random_bipartite_world(2000, 100, seed=4)
        b, attrs_b = random_bipartite_world(2000, 100, seed=4)
        assert a.n_left == 2000 and a.n_right == 100
        assert a.n_edges == b.n_edges
        la, ra = a.membership_arrays()
        lb, rb = b.membership_arrays()
        assert np.array_equal(la, lb) and np.array_equal(ra, rb)
        assert attrs_a.names == attrs_b.names == ["sector", "region"]
        for name in attrs_a.names:
            assert np.array_equal(attrs_a.codes(name), attrs_b.codes(name))

    def test_seed_changes_world(self):
        a, _ = random_bipartite_world(2000, 100, seed=4)
        b, _ = random_bipartite_world(2000, 100, seed=5)
        la, ra = a.membership_arrays()
        lb, rb = b.membership_arrays()
        assert len(la) != len(lb) or not np.array_equal(ra, rb)

    def test_every_individual_has_a_board(self):
        world, _ = random_bipartite_world(500, 50, seed=7)
        assert (world.left_degrees() >= 1).all()

    def test_group_popularity_is_power_law(self):
        world, _ = random_bipartite_world(20000, 200, seed=8)
        degrees = world.right_degrees()
        # Low-rank groups must dominate: top 10% of groups hold most seats.
        top = int(degrees[:20].sum())
        assert top > world.n_edges / 2

    def test_attribute_table_matches_groups(self):
        _, attrs = random_bipartite_world(
            300, 40, attributes={"kind": 3}, seed=9
        )
        assert attrs.n_nodes == 40
        assert attrs.n_attributes == 1
        assert attrs.codes("kind").max() < 3

    def test_validation(self):
        with pytest.raises(ReproError):
            random_bipartite_world(0, 5)
        with pytest.raises(ReproError):
            random_bipartite_world(5, 5, mean_extra_degree=-1)
        with pytest.raises(ReproError):
            random_bipartite_world(5, 5, attribute_skew=0)
        with pytest.raises(ReproError):
            random_bipartite_world(5, 5, attributes={"x": 0})
