"""Tests of TableBuilder: finalTable construction for all scenarios."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, TableError
from repro.etl.builder import (
    UNIT_COLUMN,
    build_final_table,
    tabular_final_table,
)
from repro.etl.schema import Role, Schema
from repro.etl.table import Table


@pytest.fixture()
def individuals():
    return Table.from_dict(
        {
            "pid": [0, 1, 2],
            "gender": ["F", "M", "F"],
            "residence": ["north", "south", "north"],
        }
    )


@pytest.fixture()
def individuals_schema():
    return Schema.build(
        segregation=["gender"], context=["residence"], id_="pid"
    )


@pytest.fixture()
def groups():
    return Table.from_dict(
        {
            "gid": [10, 11, 12],
            "sector": ["electricity", "transports", "education"],
        }
    )


@pytest.fixture()
def groups_schema():
    return Schema.build(context=["sector"], id_="gid")


class TestBuildFinalTable:
    def test_one_row_per_individual_and_unit(
        self, individuals, individuals_schema, groups, groups_schema
    ):
        membership = [(0, 10), (0, 11), (1, 12), (2, 10)]
        node_unit = {10: 0, 11: 0, 12: 1}
        table, schema = build_final_table(
            individuals, individuals_schema, groups, groups_schema,
            membership, node_unit,
        )
        # individual 0 has two groups in unit 0 -> one row with merged sector
        assert len(table) == 3
        rows = list(table.iter_rows())
        row0 = next(r for r in rows if r["gender"] == "F" and r[UNIT_COLUMN] == 0
                    and r["residence"] == "north"
                    and len(r["sector"]) == 2)
        assert row0["sector"] == frozenset({"electricity", "transports"})

    def test_paper_fig3_multivalued_sector(
        self, individuals, individuals_schema, groups, groups_schema
    ):
        """The Fig. 3 example: two boards in one unit merge their sectors."""
        table, schema = build_final_table(
            individuals, individuals_schema, groups, groups_schema,
            [(0, 10), (0, 11)], {10: 5, 11: 5},
        )
        assert len(table) == 1
        assert table.row(0)["sector"] == frozenset(
            {"electricity", "transports"}
        )
        assert schema.spec("sector").multi_valued
        assert schema.unit_name == UNIT_COLUMN

    def test_same_individual_two_units_two_rows(
        self, individuals, individuals_schema, groups, groups_schema
    ):
        table, _ = build_final_table(
            individuals, individuals_schema, groups, groups_schema,
            [(0, 10), (0, 12)], {10: 0, 12: 1},
        )
        assert len(table) == 2
        units = sorted(r[UNIT_COLUMN] for r in table.iter_rows())
        assert units == [0, 1]

    def test_groups_missing_from_node_unit_skipped(
        self, individuals, individuals_schema, groups, groups_schema
    ):
        table, _ = build_final_table(
            individuals, individuals_schema, groups, groups_schema,
            [(0, 10), (1, 11)], {10: 0},
        )
        assert len(table) == 1

    def test_unknown_membership_id_raises(
        self, individuals, individuals_schema, groups, groups_schema
    ):
        with pytest.raises(TableError, match="unknown id"):
            build_final_table(
                individuals, individuals_schema, groups, groups_schema,
                [(99, 10)], {10: 0},
            )

    def test_groups_with_sa_rejected(
        self, individuals, individuals_schema, groups
    ):
        bad_schema = Schema.build(
            segregation=["sector"], id_="gid"
        )
        with pytest.raises(SchemaError, match="must not declare"):
            build_final_table(
                individuals, individuals_schema, groups, bad_schema,
                [(0, 10)], {10: 0},
            )

    def test_duplicate_ids_rejected(self, individuals_schema, groups,
                                    groups_schema):
        duplicated = Table.from_dict(
            {"pid": [0, 0], "gender": ["F", "M"], "residence": ["north", "south"]}
        )
        with pytest.raises(TableError, match="duplicate ids"):
            build_final_table(
                duplicated, individuals_schema, groups, groups_schema,
                [(0, 10)], {10: 0},
            )

    def test_multivalued_group_attribute_merged(self, individuals,
                                                individuals_schema):
        groups = Table.from_dict(
            {"gid": [10, 11], "tags": [{"a", "b"}, {"b", "c"}]}
        )
        groups_schema = Schema.build(
            context=["tags"], id_="gid", multi_valued=["tags"]
        )
        table, _ = build_final_table(
            individuals, individuals_schema, groups, groups_schema,
            [(0, 10), (0, 11)], {10: 0, 11: 0},
        )
        assert table.row(0)["tags"] == frozenset({"a", "b", "c"})

    def test_output_schema_roles(
        self, individuals, individuals_schema, groups, groups_schema
    ):
        _, schema = build_final_table(
            individuals, individuals_schema, groups, groups_schema,
            [(0, 10)], {10: 0},
        )
        assert schema.sa_names == ["gender"]
        assert set(schema.ca_names) == {"residence", "sector"}
        assert schema.unit_name == UNIT_COLUMN


class TestTabularFinalTable:
    def test_categorical_unit_attribute(self):
        table = Table.from_dict(
            {"gender": ["F", "M"], "sector": ["a", "b"]}
        )
        schema = Schema.build(segregation=["gender"], context=["sector"])
        final, final_schema = tabular_final_table(table, schema, "sector")
        assert UNIT_COLUMN in final
        assert "sector" not in final
        assert final.ints(UNIT_COLUMN).values() == [0, 1]
        assert final_schema.unit_name == UNIT_COLUMN
        assert final_schema.ca_names == []

    def test_integer_unit_attribute(self):
        table = Table.from_dict({"gender": ["F"], "school": [7]})
        schema = Schema.build(segregation=["gender"], context=[])
        schema = schema.with_spec(
            # unit source column present in the table but not SA/CA
            __import__("repro.etl.schema", fromlist=["AttributeSpec"])
            .AttributeSpec("school", Role.IGNORE)
        )
        final, _ = tabular_final_table(table, schema, "school")
        assert final.ints(UNIT_COLUMN).values() == [7]

    def test_multivalued_unit_rejected(self):
        table = Table.from_dict({"gender": ["F"], "mv": [{"a"}]})
        schema = Schema.build(
            segregation=["gender"], context=["mv"], multi_valued=["mv"]
        )
        with pytest.raises(TableError, match="categorical or integer"):
            tabular_final_table(table, schema, "mv")
