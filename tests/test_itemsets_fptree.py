"""White-box tests of the FP-tree structure and its optimisations."""

from __future__ import annotations

import pytest

from repro.itemsets.fpgrowth import FPTree, _build_tree, mine_fpgrowth
from repro.itemsets.eclat import mine_eclat

from tests.test_itemsets_miners import make_db


class TestFPTreeStructure:
    def test_shared_prefixes_compress(self):
        tree = FPTree()
        tree.insert([0, 1, 2], 1)
        tree.insert([0, 1, 3], 1)
        tree.insert([0, 1], 1)
        # Root has one child (0), which has one child (1) with count 3.
        assert len(tree.root.children) == 1
        node0 = tree.root.children[0]
        assert node0.count == 3
        node1 = node0.children[1]
        assert node1.count == 3
        assert set(node1.children) == {2, 3}

    def test_header_links_chain_same_item(self):
        tree = FPTree()
        tree.insert([0, 2], 1)
        tree.insert([1, 2], 1)
        chain = []
        node = tree.header[2]
        while node is not None:
            chain.append(node)
            node = node.next_link
        assert len(chain) == 2

    def test_counts_accumulate(self):
        tree = FPTree()
        tree.insert([5], 3)
        tree.insert([5], 2)
        assert tree.counts[5] == 5

    def test_single_path_detection(self):
        tree = FPTree()
        tree.insert([0, 1, 2], 2)
        tree.insert([0, 1], 1)
        path = tree.is_single_path()
        assert path == [(0, 3), (1, 3), (2, 2)]

    def test_branching_is_not_single_path(self):
        tree = FPTree()
        tree.insert([0, 1], 1)
        tree.insert([0, 2], 1)
        assert tree.is_single_path() is None

    def test_prefix_paths(self):
        tree = FPTree()
        tree.insert([0, 1, 2], 2)
        tree.insert([1, 2], 1)
        paths = tree.prefix_paths(2)
        assert sorted(paths) == [([0, 1], 2), ([1], 1)]


class TestBuildTree:
    def test_infrequent_items_dropped(self):
        transactions = [([0, 1], 1), ([0, 2], 1), ([0], 1)]
        tree, order = _build_tree(transactions, minsup=2)
        assert order == [0]
        assert 1 not in tree.counts

    def test_order_by_descending_frequency(self):
        transactions = [([0, 1], 1), ([1], 1), ([1, 2], 1), ([2], 1)]
        tree, order = _build_tree(transactions, minsup=1)
        assert order[0] == 1            # most frequent first


class TestSinglePathOptimisation:
    def test_deep_chain_database(self):
        """A database that is one long chain exercises the single-path
        subset enumeration (2^k - 1 itemsets)."""
        chain = tuple(range(8))
        db = make_db([chain, chain, chain])
        result = mine_fpgrowth(db, 2)
        assert len(result) == 2 ** 8 - 1
        assert all(v == 3 for v in result.values())
        assert result == mine_eclat(db, 2)

    def test_chain_with_decreasing_counts(self):
        rows = [tuple(range(k)) for k in range(1, 7) for _ in range(2)]
        db = make_db(rows)
        assert mine_fpgrowth(db, 2) == mine_eclat(db, 2)

    def test_max_len_inside_single_path(self):
        chain = tuple(range(6))
        db = make_db([chain, chain])
        result = mine_fpgrowth(db, 1, max_len=2)
        assert all(len(k) <= 2 for k in result)
        assert len(result) == 6 + 15
