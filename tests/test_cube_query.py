"""Tests of cube navigation, slicing, ranking and export."""

from __future__ import annotations

import pytest

from repro.cube.builder import build_cube
from repro.cube.coordinates import make_key
from repro.etl.schema import Schema
from repro.etl.table import Table


@pytest.fixture(scope="module")
def cube():
    rows = []
    rows += [("F", "x", 0)] * 9 + [("F", "x", 1)] * 1
    rows += [("M", "x", 0)] * 1 + [("M", "x", 1)] * 9
    rows += [("F", "y", 2)] * 5 + [("F", "y", 3)] * 5
    rows += [("M", "y", 2)] * 5 + [("M", "y", 3)] * 5
    table = Table.from_rows(["sex", "ctx", "unitID"], rows)
    schema = Schema.build(segregation=["sex"], context=["ctx"], unit="unitID")
    return build_cube(table, schema, min_population=1, min_minority=1)


class TestLookup:
    def test_point_query(self, cube):
        cell = cube.cell(sa={"sex": "F"}, ca={"ctx": "x"})
        assert cell.minority == 10
        assert cell.value("D") == pytest.approx(0.8)

    def test_value_shortcut(self, cube):
        assert cube.value("D", sa={"sex": "F"}, ca={"ctx": "x"}) == (
            pytest.approx(0.8)
        )

    def test_missing_cell_returns_nan_value(self, cube):
        import math

        # ctx attribute value exists but pairing with huge thresholds is
        # resolved by the lazy resolver; an unknown value raises instead.
        assert math.isnan(cube.value("ZZZ", sa={"sex": "F"}))

    def test_contains_and_iteration(self, cube):
        assert len(cube) == len(list(iter(cube)))
        assert make_key([], []) in cube


class TestNavigation:
    def test_children_refine_by_one(self, cube):
        root = make_key([], [])
        children = cube.children(root)
        assert all(c.depth() == 1 for c in children)
        # sex=F, sex=M, ctx=x, ctx=y
        assert len(children) == 4

    def test_parents_roll_up(self, cube):
        cell = cube.cell(sa={"sex": "F"}, ca={"ctx": "x"})
        parents = cube.parents(cell.key)
        descriptions = {cube.describe(p.key) for p in parents}
        assert "[sex=F | *]" in descriptions
        assert "[* | ctx=x]" in descriptions

    def test_slice_fixes_coordinates(self, cube):
        cells = cube.slice(ca={"ctx": "x"})
        assert all("ctx=x" in cube.describe(c.key) for c in cells)
        assert len(cells) == 3            # (*|x), (F|x), (M|x)


class TestTop:
    def test_top_ranks_descending(self, cube):
        top = cube.top("D", k=2)
        assert top[0].value("D") >= top[1].value("D")
        assert top[0].value("D") == pytest.approx(0.8)

    def test_top_excludes_context_only(self, cube):
        for cell in cube.top("D", k=100):
            assert not cell.is_context_only

    def test_top_respects_filters(self, cube):
        top = cube.top("D", k=10, min_minority=11)
        assert all(c.minority >= 11 for c in top)

    def test_top_ascending_for_exposure(self, cube):
        bottom = cube.top("Int", k=1, ascending=True)
        assert bottom[0].value("Int") <= 0.5


class TestExport:
    def test_to_rows_has_all_columns(self, cube):
        rows = cube.to_rows()
        assert len(rows) == len(cube)
        first = rows[0]
        for column in ("sex", "ctx", "T", "M", "P", "units", "D", "G"):
            assert column in first

    def test_to_rows_renders_stars_and_dashes(self, cube):
        rows = cube.to_rows()
        root = next(r for r in rows if r["sex"] == "*" and r["ctx"] == "*")
        assert root["D"] == ""            # context-only -> blank metric
        assert root["T"] == 40            # the full table

    def test_attribute_lists(self, cube):
        assert cube.sa_attributes() == ["sex"]
        assert cube.ca_attributes() == ["ctx"]

    def test_repr(self, cube):
        assert "SegregationCube" in repr(cube)
