"""Tests of items and the typed item dictionary."""

from __future__ import annotations

import pytest

from repro.errors import MiningError
from repro.itemsets.items import Item, ItemDictionary, ItemKind


class TestItem:
    def test_str_rendering(self):
        assert str(Item("sex", "female")) == "sex=female"

    def test_items_are_hashable_and_ordered(self):
        a, b = Item("a", 1), Item("b", 0)
        assert a < b
        assert len({a, b, Item("a", 1)}) == 2


class TestItemDictionary:
    @pytest.fixture()
    def dictionary(self):
        d = ItemDictionary()
        d.add(Item("sex", "F"), ItemKind.SA)
        d.add(Item("sex", "M"), ItemKind.SA)
        d.add(Item("region", "north"), ItemKind.CA)
        return d

    def test_add_is_idempotent(self, dictionary):
        assert dictionary.add(Item("sex", "F"), ItemKind.SA) == 0
        assert len(dictionary) == 3

    def test_kind_conflict_rejected(self, dictionary):
        with pytest.raises(MiningError, match="already registered"):
            dictionary.add(Item("sex", "F"), ItemKind.CA)

    def test_id_round_trip(self, dictionary):
        item_id = dictionary.id_of(Item("region", "north"))
        assert dictionary.item(item_id) == Item("region", "north")
        assert dictionary.kind(item_id) is ItemKind.CA

    def test_unknown_item_raises(self, dictionary):
        with pytest.raises(MiningError, match="unknown item"):
            dictionary.id_of(Item("nope", "x"))

    def test_out_of_range_id_raises(self, dictionary):
        with pytest.raises(MiningError):
            dictionary.item(99)
        with pytest.raises(MiningError):
            dictionary.kind(-1)

    def test_kind_partitions(self, dictionary):
        assert dictionary.sa_ids == [0, 1]
        assert dictionary.ca_ids == [2]

    def test_split(self, dictionary):
        sa, ca = dictionary.split([0, 2])
        assert sa == frozenset({0})
        assert ca == frozenset({2})

    def test_describe(self, dictionary):
        assert dictionary.describe([2, 0]) == "region=north, sex=F"
        assert dictionary.describe([]) == "*"

    def test_attributes_of(self, dictionary):
        assert dictionary.attributes_of([0, 1, 2]) == ["region", "sex"]

    def test_conflicts(self, dictionary):
        assert dictionary.conflicts([0, 1])       # sex=F and sex=M
        assert not dictionary.conflicts([0, 2])

    def test_contains(self, dictionary):
        assert Item("sex", "F") in dictionary
        assert Item("sex", "X") not in dictionary
