"""Tests of the shards.json manifest and the sharded snapshot writers.

The core invariant of every sharding scheme is *disjoint and complete*
partitioning: each cell of the logical cube lands in exactly one shard,
and the shard key a writer derives from a cell equals the one the query
router re-derives from the same key — that is what lets point queries
route to one shard and scans merge without duplicates.
"""

from __future__ import annotations

import json

import pytest

from repro.cube.builder import build_cube
from repro.errors import SnapshotError
from repro.store import open_snapshot
from repro.store.shards import (
    SHARDS_NAME,
    WILDCARD_SHARD,
    ShardEntry,
    ShardsManifest,
    attribute_shard_of_key,
    dump_sharded_snapshot,
    hash_shard_of_key,
    is_sharded,
    shard_keys_of_table,
)


@pytest.fixture(scope="module")
def built(schools):
    table, schema = schools
    return build_cube(table, schema, min_population=10, min_minority=3)


class TestManifest:
    def _manifest(self):
        return ShardsManifest(
            format_version=1,
            sharded_by="hash",
            n_words=1,
            entries=[
                ShardEntry(path="shard-0", key="0"),
                ShardEntry(path="shard-1", key="1"),
            ],
        )

    def test_round_trip(self, tmp_path):
        manifest = self._manifest()
        manifest.write(tmp_path)
        assert is_sharded(tmp_path)
        again = ShardsManifest.read(tmp_path)
        assert again == manifest
        assert again.n_shards == 2

    def test_missing_manifest_is_clean_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="no shards manifest"):
            ShardsManifest.read(tmp_path)

    def test_bad_json_is_clean_error(self, tmp_path):
        (tmp_path / SHARDS_NAME).write_text("{nope")
        with pytest.raises(SnapshotError, match="not valid JSON"):
            ShardsManifest.read(tmp_path)

    def test_unknown_version_rejected(self, tmp_path):
        payload = json.loads(self._manifest().to_json())
        payload["format_version"] = 99
        (tmp_path / SHARDS_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="version"):
            ShardsManifest.read(tmp_path)

    def test_unknown_scheme_rejected(self, tmp_path):
        payload = json.loads(self._manifest().to_json())
        payload["sharded_by"] = "zodiac"
        (tmp_path / SHARDS_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="zodiac"):
            ShardsManifest.read(tmp_path)

    def test_duplicate_keys_rejected(self, tmp_path):
        payload = json.loads(self._manifest().to_json())
        payload["entries"][1]["key"] = "0"
        (tmp_path / SHARDS_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="duplicate"):
            ShardsManifest.read(tmp_path)

    def test_date_mode_requires_dates(self, tmp_path):
        payload = json.loads(self._manifest().to_json())
        payload["sharded_by"] = "date"
        (tmp_path / SHARDS_NAME).write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="without a date"):
            ShardsManifest.read(tmp_path)


class TestPartitionFunctions:
    def test_writer_and_router_agree_on_hash(self, built):
        n_words = built.table.sa_masks.shape[1]
        writer_keys = shard_keys_of_table(built, "hash", 4)
        for row, key in enumerate(built.table.keys):
            assert writer_keys[row] == hash_shard_of_key(
                key[0], key[1], n_words, 4
            )

    def test_writer_and_router_agree_on_attribute(self, built):
        writer_keys = shard_keys_of_table(built, "attribute:city", 0)
        for row, key in enumerate(built.table.keys):
            assert writer_keys[row] == attribute_shard_of_key(
                key[1], built.dictionary, "city"
            )

    def test_wildcard_shard_for_cells_without_the_attribute(self, built):
        keys = shard_keys_of_table(built, "attribute:city", 0)
        wildcard_rows = [
            row for row, key in enumerate(built.table.keys)
            if not any(
                built.dictionary.item(i).attribute == "city"
                for i in key[1]
            )
        ]
        assert wildcard_rows  # the all-⋆ cell at least
        assert all(keys[row] == WILDCARD_SHARD for row in wildcard_rows)

    def test_non_context_attribute_rejected(self, built):
        with pytest.raises(SnapshotError, match="not a context attribute"):
            shard_keys_of_table(built, "attribute:ethnicity", 0)

    def test_unknown_scheme_rejected(self, built):
        with pytest.raises(SnapshotError, match="unknown sharding scheme"):
            shard_keys_of_table(built, "zodiac", 4)


class TestDumpShardedSnapshot:
    @pytest.mark.parametrize("by,n_shards", [
        ("hash", 3), ("hash", 1), ("attribute:city", 0),
    ])
    def test_partition_is_disjoint_and_complete(
        self, built, tmp_path, by, n_shards
    ):
        root = dump_sharded_snapshot(
            built, tmp_path / "sharded", by=by, n_shards=n_shards
        )
        manifest = ShardsManifest.read(root)
        assert manifest.sharded_by == by
        seen: "list[object]" = []
        for entry in manifest.entries:
            shard = open_snapshot(root / entry.path)
            assert len(shard.dictionary) == len(built.dictionary)
            assert all(
                shard.dictionary.item(i) == built.dictionary.item(i)
                for i in range(len(built.dictionary))
            )
            assert shard.metadata.extra["shard"]["key"] == entry.key
            seen.extend(shard.keys())
        assert sorted(map(repr, seen)) == sorted(map(repr, built.keys()))
        assert len(seen) == len(built)

    def test_hash_buckets_exist_even_when_empty(self, built, tmp_path):
        # More buckets than cells: some must be empty, yet every bucket
        # the routing function can land on needs a directory.
        root = dump_sharded_snapshot(
            built, tmp_path / "wide", by="hash", n_shards=64
        )
        manifest = ShardsManifest.read(root)
        assert manifest.n_shards == 64
        sizes = [
            len(open_snapshot(root / entry.path))
            for entry in manifest.entries
        ]
        assert sum(sizes) == len(built)
        assert 0 in sizes

    def test_invalid_n_shards_rejected(self, built, tmp_path):
        with pytest.raises(SnapshotError, match="n_shards"):
            dump_sharded_snapshot(built, tmp_path / "bad", n_shards=0)

    def test_shard_cells_identical_to_source(self, built, tmp_path):
        root = dump_sharded_snapshot(
            built, tmp_path / "parity", by="hash", n_shards=3
        )
        manifest = ShardsManifest.read(root)
        for entry in manifest.entries:
            shard = open_snapshot(root / entry.path)
            for key in shard.keys():
                ours = shard.cell_by_key(key)
                theirs = built.cell_by_key(key)
                assert (ours.population, ours.minority, ours.n_units) == (
                    theirs.population, theirs.minority, theirs.n_units
                )
