"""``engine="parallel"``: multiprocess fill, bit-exact vs columnar.

Every test asserts zero-tolerance cell identity — the parallel engine
runs the same kernels over the same inputs, so there is nothing to be
"close" about.  Edge cases: one worker (the pool still runs), more
workers than contexts (partitions clamp), closed mode, non-default
codecs, and restricted (temporal) databases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cube.builder import SegregationDataCubeBuilder, build_cube
from repro.cube.cube import check_same_cells
from repro.cube.parallel import _partition_groups, resolve_workers
from repro.errors import CubeError
from repro.itemsets.transactions import encode_table

LIMITS = {"min_population": 15, "min_minority": 4}


def assert_parallel_matches_columnar(table, schema, workers, **kwargs):
    columnar = SegregationDataCubeBuilder(
        **LIMITS, **kwargs
    ).build(table, schema)
    parallel = SegregationDataCubeBuilder(
        engine="parallel", workers=workers, **LIMITS, **kwargs
    ).build(table, schema)
    assert check_same_cells(columnar, parallel, atol=0.0) == []
    assert list(parallel.keys()) == list(columnar.keys())
    return parallel


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_parallel_bit_identity(small_final_table, workers):
    table, schema = small_final_table
    cube = assert_parallel_matches_columnar(table, schema, workers)
    assert cube.metadata.extra["engine"] == "parallel"
    assert cube.metadata.extra["workers"] == workers


def test_parallel_on_schools(schools):
    table, schema = schools
    assert_parallel_matches_columnar(table, schema, workers=2)


def test_parallel_more_workers_than_contexts(small_final_table):
    # Clamp max_ca_items so the context lattice is tiny; 16 workers must
    # degrade to one partition per context, not crash or pad.
    table, schema = small_final_table
    assert_parallel_matches_columnar(
        table, schema, workers=16, max_ca_items=1
    )


def test_parallel_closed_mode(small_final_table):
    table, schema = small_final_table
    cube = assert_parallel_matches_columnar(
        table, schema, workers=2, mode="closed"
    )
    assert cube.metadata.mode == "closed"


@pytest.mark.parametrize("codec", ["bool", "ewah"])
def test_parallel_non_packed_codecs(small_final_table, codec):
    table, schema = small_final_table
    assert_parallel_matches_columnar(table, schema, workers=2, codec=codec)


def test_parallel_on_restricted_database(small_final_table):
    table, schema = small_final_table
    db = encode_table(table, schema)
    active = np.arange(len(db)) % 3 != 0    # drop every third row
    restricted = db.restrict(active)
    columnar = SegregationDataCubeBuilder(
        **LIMITS
    ).build_from_transactions(restricted)
    parallel = SegregationDataCubeBuilder(
        engine="parallel", workers=2, **LIMITS
    ).build_from_transactions(restricted)
    assert check_same_cells(columnar, parallel, atol=0.0) == []


def test_build_cube_passes_workers_through(small_final_table):
    table, schema = small_final_table
    reference = build_cube(table, schema, **LIMITS)
    cube = build_cube(
        table, schema, engine="parallel", workers=2, **LIMITS
    )
    assert check_same_cells(reference, cube, atol=0.0) == []
    assert cube.metadata.extra["workers"] == 2


def test_engine_and_workers_validation():
    with pytest.raises(CubeError):
        SegregationDataCubeBuilder(engine="distributed")
    with pytest.raises(CubeError):
        SegregationDataCubeBuilder(engine="parallel", workers=0)


def test_resolve_workers_defaults_to_cpu_count():
    assert resolve_workers(3) == 3
    assert resolve_workers(None) >= 1


def test_partition_groups_balances_and_clamps():
    groups = [
        (np.zeros(2), np.arange(size, dtype=np.int64))
        for size in (10, 1, 1, 1, 7, 2)
    ]
    parts = _partition_groups(groups, 3)
    assert len(parts) == 3
    assert all(part for part in parts)
    loads = sorted(sum(len(rows) for _, rows in part) for part in parts)
    assert loads == [5, 7, 10]          # greedy largest-first balance
    # Clamped: never more partitions than groups, never empty ones.
    parts = _partition_groups(groups[:2], 5)
    assert len(parts) == 2
    assert all(part for part in parts)
