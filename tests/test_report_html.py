"""Tests of the self-contained HTML cube report."""

from __future__ import annotations

import html.parser

import pytest

from repro.cube.builder import build_cube
from repro.errors import ReportError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.report.html import cube_to_html


class _TableCounter(html.parser.HTMLParser):
    def __init__(self):
        super().__init__()
        self.rows = 0
        self.cells = 0

    def handle_starttag(self, tag, attrs):
        if tag == "tr":
            self.rows += 1
        if tag == "td":
            self.cells += 1


@pytest.fixture(scope="module")
def cube():
    rows = []
    rows += [("F", "x", 0)] * 9 + [("F", "x", 1)] * 1
    rows += [("M", "x", 0)] * 1 + [("M", "x", 1)] * 9
    table = Table.from_rows(["sex", "ctx", "unitID"], rows)
    schema = Schema.build(segregation=["sex"], context=["ctx"],
                          unit="unitID")
    return build_cube(table, schema, min_population=1, min_minority=1)


class TestCubeToHtml:
    def test_writes_parseable_html(self, cube, tmp_path):
        path = cube_to_html(cube, tmp_path / "report.html")
        text = path.read_text()
        parser = _TableCounter()
        parser.feed(text)
        # header row + one row per cell
        assert parser.rows == 1 + len(cube)
        assert parser.cells > 0

    def test_contains_metadata_and_title(self, cube, tmp_path):
        path = cube_to_html(cube, tmp_path / "r.html", title="My <analysis>")
        text = path.read_text()
        assert "My &lt;analysis&gt;" in text      # escaped title
        assert f"units: {cube.metadata.n_units}" in text
        assert "min minority" in text

    def test_index_cells_shaded(self, cube, tmp_path):
        text = cube_to_html(cube, tmp_path / "s.html").read_text()
        assert "background: rgb(" in text

    def test_nan_rendered_as_dash(self, cube, tmp_path):
        text = cube_to_html(cube, tmp_path / "d.html").read_text()
        assert ">-</td>" in text                 # the context-only cells

    def test_creates_parent_directories(self, cube, tmp_path):
        path = cube_to_html(cube, tmp_path / "a" / "b" / "r.html")
        assert path.exists()

    def test_self_contained(self, cube, tmp_path):
        text = cube_to_html(cube, tmp_path / "c.html").read_text()
        assert "http" not in text                # no external assets
        assert "<script" not in text
