"""Tests of the text-table renderers."""

from __future__ import annotations

from repro.report.text import bar, format_value, render_dict_rows, render_table


class TestFormatValue:
    def test_floats_rounded(self):
        assert format_value(0.123456, digits=3) == "0.123"

    def test_nan_is_dash(self):
        assert format_value(float("nan")) == "-"

    def test_strings_and_ints_pass_through(self):
        assert format_value("x") == "x"
        assert format_value(7) == "7"


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "v"], [["a", 1.5], ["long-name", 0.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        # Columns aligned: 'v' column starts at the same offset everywhere.
        offset = lines[0].index("v")
        assert lines[2][offset:offset + 1] != " "

    def test_extra_cells_tolerated(self):
        text = render_table(["a"], [["x", "extra"]])
        assert "extra" in text

    def test_nan_rendered_as_dash(self):
        text = render_table(["v"], [[float("nan")]])
        assert "-" in text.splitlines()[2]


class TestRenderDictRows:
    def test_header_from_first_row(self):
        text = render_dict_rows([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert text.splitlines()[0].startswith("a")

    def test_empty(self):
        assert render_dict_rows([]) == "(no rows)"


class TestBar:
    def test_scales_to_width(self):
        assert bar(1.0, 1.0, width=10) == "#" * 10
        assert bar(0.5, 1.0, width=10) == "#" * 5

    def test_clamps(self):
        assert bar(2.0, 1.0, width=4) == "####"
        assert bar(-1.0, 1.0, width=4) == ""

    def test_nan_is_empty(self):
        assert bar(float("nan")) == ""
