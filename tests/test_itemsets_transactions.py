"""Tests of the transaction encoding of finalTable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MiningError
from repro.etl.schema import Schema
from repro.etl.table import Table
from repro.itemsets.items import Item, ItemKind
from repro.itemsets.transactions import TransactionDatabase, encode_table


@pytest.fixture()
def final_table():
    return Table.from_dict(
        {
            "gender": ["F", "M", "F"],
            "sector": [{"a", "b"}, {"a"}, set()],
            "unitID": [0, 0, 1],
        }
    )


@pytest.fixture()
def schema():
    return Schema.build(
        segregation=["gender"],
        context=["sector"],
        unit="unitID",
        multi_valued=["sector"],
    )


class TestEncodeTable:
    def test_items_typed_by_role(self, final_table, schema):
        db = encode_table(final_table, schema)
        d = db.dictionary
        assert d.kind(d.id_of(Item("gender", "F"))) is ItemKind.SA
        assert d.kind(d.id_of(Item("sector", "a"))) is ItemKind.CA

    def test_multivalued_contributes_one_item_per_member(
        self, final_table, schema
    ):
        db = encode_table(final_table, schema)
        d = db.dictionary
        f = d.id_of(Item("gender", "F"))
        a = d.id_of(Item("sector", "a"))
        b = d.id_of(Item("sector", "b"))
        assert set(db.rows[0]) == {f, a, b}
        # Empty value set contributes nothing beyond the SA item.
        assert set(db.rows[2]) == {f}

    def test_units_carried_along(self, final_table, schema):
        db = encode_table(final_table, schema)
        assert db.units.tolist() == [0, 0, 1]
        assert db.n_units == 2

    def test_item_supports(self, final_table, schema):
        db = encode_table(final_table, schema)
        d = db.dictionary
        supports = db.item_supports()
        assert supports[d.id_of(Item("gender", "F"))] == 2
        assert supports[d.id_of(Item("sector", "a"))] == 2
        assert supports[d.id_of(Item("sector", "b"))] == 1


class TestTransactionDatabase:
    def test_cover_and_support(self, final_table, schema):
        db = encode_table(final_table, schema)
        d = db.dictionary
        f = d.id_of(Item("gender", "F"))
        a = d.id_of(Item("sector", "a"))
        assert db.support_of([f]) == 2
        assert db.support_of([f, a]) == 1
        assert db.cover_of([]).all()

    def test_unit_counts_restricted_to_cover(self, final_table, schema):
        db = encode_table(final_table, schema)
        d = db.dictionary
        f = d.id_of(Item("gender", "F"))
        counts = db.unit_counts(db.cover_of([f]))
        assert counts.tolist() == [1, 1]

    def test_unit_counts_without_units_raises(self):
        db = TransactionDatabase([(0,)], _tiny_dictionary())
        with pytest.raises(MiningError, match="no unit labels"):
            db.unit_counts(np.array([True]))

    def test_unit_counts_many_matches_single(self, final_table, schema):
        db = encode_table(final_table, schema)
        covers = [db.cover_of([i]) for i in range(db.n_items)]
        covers.append(db.full_cover())
        many = db.unit_counts_many(covers)
        assert many.shape == (len(covers), db.n_units)
        for j, cover in enumerate(covers):
            assert many[j].tolist() == db.unit_counts(cover).tolist()

    def test_unit_counts_many_chunking_is_invisible(self):
        rng = np.random.default_rng(5)
        units = rng.integers(0, 9, 400)
        db = TransactionDatabase(
            [(0,) if flag else () for flag in rng.random(400) < 0.5],
            _tiny_dictionary(),
            units=units,
        )
        covers = [rng.random(400) < p for p in (0.0, 0.1, 0.5, 0.9, 1.0)]
        # A one-index chunk budget forces one chunk per cover.
        tiny = db.unit_counts_many(covers, max_chunk_indices=1)
        one = db.unit_counts_many(covers)
        assert (tiny == one).all()
        for j, cover in enumerate(covers):
            assert (one[j] == db.unit_counts(cover)).all()

    def test_unit_counts_many_empty_input(self, final_table, schema):
        db = encode_table(final_table, schema)
        assert db.unit_counts_many([]).shape == (0, db.n_units)

    def test_unit_counts_many_length_mismatch(self, final_table, schema):
        db = encode_table(final_table, schema)
        with pytest.raises(MiningError, match="does not match"):
            db.unit_counts_many([np.array([True])])

    def test_unit_counts_many_without_units_raises(self):
        db = TransactionDatabase([(0,)], _tiny_dictionary())
        with pytest.raises(MiningError, match="no unit labels"):
            db.unit_counts_many([np.array([True])])

    def test_unit_counts_many_validates_even_with_zero_units(self):
        db = TransactionDatabase([], _tiny_dictionary(),
                                 units=np.zeros(0, dtype=np.int64))
        with pytest.raises(MiningError, match="does not match"):
            db.unit_counts_many([np.array([True])])
        assert db.unit_counts_many([]).shape == (0, 0)

    def test_unit_label_length_checked(self):
        with pytest.raises(MiningError):
            TransactionDatabase([(0,)], _tiny_dictionary(),
                                units=np.array([0, 1]))

    def test_negative_units_rejected(self):
        with pytest.raises(MiningError):
            TransactionDatabase([(0,)], _tiny_dictionary(),
                                units=np.array([-1]))

    def test_rows_deduplicate_items(self):
        db = TransactionDatabase([(0, 0, 0)], _tiny_dictionary())
        assert db.rows[0] == (0,)

    def test_cover_of_unknown_item(self, final_table, schema):
        db = encode_table(final_table, schema)
        with pytest.raises(MiningError):
            db.cover_of([999])


def _tiny_dictionary():
    from repro.itemsets.items import ItemDictionary

    d = ItemDictionary()
    d.add(Item("x", "a"), ItemKind.SA)
    return d


class TestSchemaInteraction:
    def test_unit_column_not_an_item(self, final_table, schema):
        db = encode_table(final_table, schema)
        for item_id in range(len(db.dictionary)):
            assert db.dictionary.item(item_id).attribute != "unitID"

    def test_schema_without_unit_gives_unlabelled_db(self):
        table = Table.from_dict({"gender": ["F"]})
        schema = Schema.build(segregation=["gender"])
        db = encode_table(table, schema)
        assert db.units is None
        assert db.n_units == 0
