"""Tests of graph snapshots: round-trip, laziness, corruption surface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.synthetic import random_bipartite_world
from repro.errors import SnapshotError
from repro.graph.bipartite import project_onto_groups
from repro.graph.components import connected_components
from repro.store.graph import (
    GRAPH_MANIFEST_NAME,
    GraphArtifact,
    GraphManifest,
    dump_graph_snapshot,
    graph_digest,
    open_graph_snapshot,
    validate_graph_snapshot,
)


@pytest.fixture(scope="module")
def artifact():
    bipartite, _ = random_bipartite_world(2000, 120, seed=17)
    projection = project_onto_groups(bipartite, max_left_degree=30)
    clustering = connected_components(projection.graph)
    return GraphArtifact.from_result(
        projection, clustering, provenance={"source": "test", "seed": 17}
    )


@pytest.fixture()
def snapshot_dir(artifact, tmp_path):
    return dump_graph_snapshot(artifact, tmp_path / "graph_snap")


class TestRoundTrip:
    def test_arrays_identical(self, artifact, snapshot_dir):
        snapshot = open_graph_snapshot(snapshot_dir)
        u, v, w = artifact.graph.edge_arrays()
        su, sv, sw = snapshot.edge_arrays()
        assert np.array_equal(su, u)
        assert np.array_equal(sv, v)
        assert np.array_equal(sw, w)
        assert np.array_equal(
            snapshot.array("labels"), artifact.clustering.labels
        )
        assert snapshot.array("isolated").tolist() == artifact.isolated
        assert snapshot.array("skipped_hubs").tolist() \
            == artifact.skipped_hubs

    def test_graph_and_clustering_reconstruct(self, artifact, snapshot_dir):
        snapshot = open_graph_snapshot(snapshot_dir)
        graph = snapshot.graph()
        assert graph.n_nodes == artifact.graph.n_nodes
        assert graph.n_edges == artifact.graph.n_edges
        clustering = snapshot.clustering()
        assert clustering.n_clusters == artifact.clustering.n_clusters
        assert clustering.method == artifact.clustering.method
        # Reclustering the reopened graph reproduces the stored labels.
        again = connected_components(graph)
        assert np.array_equal(again.labels, clustering.labels)

    def test_mmap_and_memory_agree(self, snapshot_dir):
        lazy = open_graph_snapshot(snapshot_dir, mmap=True)
        eager = open_graph_snapshot(snapshot_dir, mmap=False)
        for name in ("edges_u", "edges_v", "edges_w", "labels"):
            assert np.array_equal(lazy.array(name), eager.array(name))
        assert isinstance(lazy.array("edges_u"), np.memmap)
        assert not isinstance(eager.array("edges_u"), np.memmap)

    def test_validate_passes_and_info(self, artifact, snapshot_dir):
        snapshot = validate_graph_snapshot(snapshot_dir)
        info = snapshot.info()
        assert info["n_nodes"] == artifact.graph.n_nodes
        assert info["n_edges"] == artifact.graph.n_edges
        assert info["method"] == "connected-components"
        assert info["provenance"] == {"source": "test", "seed": 17}
        u, v, w = artifact.graph.edge_arrays()
        assert info["total_weight"] == pytest.approx(float(w.sum()))

    def test_redump_is_idempotent(self, artifact, snapshot_dir):
        first = GraphManifest.read(snapshot_dir).content_digest
        dump_graph_snapshot(artifact, snapshot_dir)
        assert GraphManifest.read(snapshot_dir).content_digest == first
        validate_graph_snapshot(snapshot_dir)

    def test_orphan_arrays_pruned(self, artifact, snapshot_dir):
        stray = snapshot_dir / "stale_column.npy"
        np.save(stray, np.arange(3))
        dump_graph_snapshot(artifact, snapshot_dir)
        assert not stray.exists()

    def test_empty_graph_round_trips(self, tmp_path):
        bipartite, _ = random_bipartite_world(5, 3, seed=1)
        projection = project_onto_groups(bipartite, min_shared=99)
        clustering = connected_components(projection.graph)
        path = dump_graph_snapshot(
            GraphArtifact.from_result(projection, clustering),
            tmp_path / "empty",
        )
        snapshot = validate_graph_snapshot(path)
        assert snapshot.n_edges == 0
        assert snapshot.graph().n_edges == 0


class TestCorruption:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError, match="no graph snapshot"):
            open_graph_snapshot(tmp_path)

    def test_manifest_not_json(self, snapshot_dir):
        (snapshot_dir / GRAPH_MANIFEST_NAME).write_text("{nope")
        with pytest.raises(SnapshotError, match="not valid JSON"):
            open_graph_snapshot(snapshot_dir)

    def test_wrong_format_version(self, snapshot_dir):
        path = snapshot_dir / GRAPH_MANIFEST_NAME
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="version"):
            open_graph_snapshot(snapshot_dir)

    def test_missing_required_field(self, snapshot_dir):
        path = snapshot_dir / GRAPH_MANIFEST_NAME
        payload = json.loads(path.read_text())
        del payload["n_edges"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="missing required"):
            open_graph_snapshot(snapshot_dir)

    def test_missing_array_file(self, snapshot_dir):
        (snapshot_dir / "edges_w.npy").unlink()
        with pytest.raises(SnapshotError, match="missing file"):
            open_graph_snapshot(snapshot_dir)

    def test_truncated_array_file(self, snapshot_dir):
        file = snapshot_dir / "labels.npy"
        file.write_bytes(file.read_bytes()[:40])
        with pytest.raises(SnapshotError):
            open_graph_snapshot(snapshot_dir)

    def test_wrong_dtype_on_disk(self, snapshot_dir):
        labels = np.load(snapshot_dir / "labels.npy")
        np.save(snapshot_dir / "labels.npy", labels.astype(np.float64))
        with pytest.raises(SnapshotError, match="dtype"):
            open_graph_snapshot(snapshot_dir)

    def test_length_mismatch(self, snapshot_dir):
        path = snapshot_dir / GRAPH_MANIFEST_NAME
        payload = json.loads(path.read_text())
        payload["n_edges"] += 1
        path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError, match="n_edges"):
            open_graph_snapshot(snapshot_dir)

    def test_tampered_weights_fail_digest(self, snapshot_dir):
        w = np.load(snapshot_dir / "edges_w.npy")
        w[0] += 1.0
        np.save(snapshot_dir / "edges_w.npy", w)
        open_graph_snapshot(snapshot_dir)   # structure still fine
        with pytest.raises(SnapshotError, match="digest mismatch"):
            validate_graph_snapshot(snapshot_dir)

    def test_unordered_edges_rejected(self, snapshot_dir):
        u = np.load(snapshot_dir / "edges_u.npy")
        v = np.load(snapshot_dir / "edges_v.npy")
        u[0], v[0] = v[0], u[0]
        np.save(snapshot_dir / "edges_u.npy", u)
        np.save(snapshot_dir / "edges_v.npy", v)
        with pytest.raises(SnapshotError, match="u < v"):
            validate_graph_snapshot(snapshot_dir)

    def test_label_out_of_range_rejected(self, snapshot_dir):
        labels = np.load(snapshot_dir / "labels.npy")
        manifest = GraphManifest.read(snapshot_dir)
        labels[0] = manifest.n_clusters
        np.save(snapshot_dir / "labels.npy", labels)
        with pytest.raises(SnapshotError, match="labels out of range"):
            validate_graph_snapshot(snapshot_dir)

    def test_digest_helper_is_content_addressed(self, artifact):
        u, v, w = artifact.graph.edge_arrays()
        arrays = {
            "edges_u": u, "edges_v": v, "edges_w": w,
            "labels": artifact.clustering.labels,
            "isolated": np.asarray(artifact.isolated, dtype=np.int64),
            "skipped_hubs": np.asarray(artifact.skipped_hubs,
                                       dtype=np.int64),
        }
        assert graph_digest(arrays) == graph_digest(dict(arrays))
        tampered = dict(arrays)
        tampered["labels"] = np.array(arrays["labels"], copy=True)
        tampered["labels"][0] += 1
        assert graph_digest(tampered) != graph_digest(arrays)

    def test_label_count_mismatch_rejected_at_build(self):
        bipartite, _ = random_bipartite_world(100, 20, seed=3)
        projection = project_onto_groups(bipartite)
        clustering = connected_components(projection.graph)
        short = type(clustering)(
            clustering.labels[:-1], clustering.n_clusters, clustering.method
        )
        with pytest.raises(SnapshotError, match="labels"):
            GraphArtifact.from_result(projection, short)
