"""Extending SCube: custom and multigroup segregation indexes.

The paper stresses that "the SCube system is parametric to the indexes"
(§2).  This example registers a custom index — the square-root index of
Hutchens, a standard evenness measure with the decomposability property
— builds a cube that computes it alongside the built-ins, and closes
with a multigroup analysis (beyond the paper's binary-group restriction)
on age groups.

Run with:  python examples/custom_index.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_italy, ItalyConfig, run_tabular
from repro.core.config import CubeConfig
from repro.data.italy import italy_tabular_individuals
from repro.indexes import (
    GroupCountsMatrix,
    IndexSpec,
    UnitCounts,
    dissimilarity,
    multigroup_dissimilarity,
    multigroup_information,
    register,
)
from repro.report.text import render_table


def hutchens_square_root(counts: UnitCounts) -> float:
    """Hutchens' square-root index SR = 1 - sum_i sqrt(m_i t'_i) with
    m, t' the minority/majority shares per unit."""
    if counts.is_degenerate():
        return float("nan")
    minority_share = counts.m / counts.minority_total
    majority_share = (counts.t - counts.m) / counts.majority_total
    return float(1.0 - np.sqrt(minority_share * majority_share).sum())


def main() -> None:
    try:
        register(
            IndexSpec("SR", "Hutchens square-root", hutchens_square_root,
                      (0.0, 1.0), True)
        )
    except Exception:
        pass  # already registered on a re-run in the same process

    dataset = generate_italy(ItalyConfig(n_companies=1500, seed=7))
    seats, schema = italy_tabular_individuals(dataset)
    result = run_tabular(
        seats,
        schema,
        "sector",
        CubeConfig(indexes=["D", "G", "SR"], min_population=20,
                   min_minority=5, max_sa_items=1, max_ca_items=1),
    )
    cube = result.cube
    print("Custom index alongside the built-ins (women, by region):")
    rows = []
    for region in ("north", "centre", "south"):
        cell = cube.cell(sa={"gender": "F"}, ca={"region": region})
        if cell is None:
            continue
        rows.append(
            [region, cell.population, cell.value("D"), cell.value("G"),
             cell.value("SR")]
        )
    print(render_table(["region", "T", "D", "G", "SR"], rows))

    # Multigroup: age groups (not just a binary minority) across sectors.
    final = result.final_table
    units = final.ints("unitID").data
    age = final.categorical("age")
    n_units = int(units.max()) + 1
    matrix = np.zeros((n_units, len(age.categories)), dtype=np.int64)
    for unit, code in zip(units, age.codes):
        matrix[unit, code] += 1
    groups = GroupCountsMatrix(matrix)
    print(
        f"\nMultigroup analysis of {len(age.categories)} age groups across "
        f"{n_units} sectors:"
    )
    print(f"  multigroup D = {multigroup_dissimilarity(groups):.3f}")
    print(f"  multigroup H = {multigroup_information(groups):.3f}")
    per_group = ", ".join(
        f"{age.categories[g]}: D={dissimilarity(groups.binary(g)):.3f}"
        for g in range(groups.n_groups)
    )
    print(f"  (binary views per age group: {per_group})")


if __name__ == "__main__":
    main()
