"""Quickstart: discover school segregation in a small census-style table.

Runs the tabular scenario (paper §4, scenario 1) on the bundled two-city
schools dataset: schools are the organizational units, ethnicity and sex
are segregation attributes, the city is the context attribute.  The
script prints the discovery ranking, a Fig. 1-style pivot, flags the
granularity trap, and writes the cube workbook.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import generate_schools, run_tabular, top_contexts
from repro.cube.explorer import simpson_reversals
from repro.report.pivot import pivot
from repro.report.xlsx import rows_to_workbook


def main() -> None:
    table, schema = generate_schools()
    print(f"students: {len(table)}; attributes: {schema.analysis_names()}")

    result = run_tabular(table, schema, unit_attr="school")
    cube = result.cube
    print(f"cube: {len(cube)} cells over {result.n_units} schools\n")

    print("Top segregation contexts (dissimilarity, >= 30 minority students):")
    for found in top_contexts(cube, "D", k=5, min_minority=30):
        print(
            f"  {found.rank}. {found.description:<45} "
            f"D={found.value:.3f}  T={found.population}  M={found.minority}"
        )

    print("\nDissimilarity pivot (ethnicity x city):")
    print(pivot(cube, "D", "ethnicity", "city"))

    overall = cube.value("D", sa={"ethnicity": "minority"})
    rivertown = cube.value(
        "D", sa={"ethnicity": "minority"}, ca={"city": "Rivertown"}
    )
    print(
        f"\nGranularity matters: city-agnostic D = {overall:.3f}, "
        f"but within Rivertown D = {rivertown:.3f}."
    )
    for reversal in simpson_reversals(cube, "D", low=0.5, high=0.8)[:3]:
        print(
            f"  reversal: {reversal.parent_description} "
            f"({reversal.parent_value:.2f}) -> "
            f"{reversal.child_description} ({reversal.child_value:.2f})"
        )

    out = Path("schools_cube.xlsx")
    rows_to_workbook(cube.to_rows()).save(out)
    print(f"\nwrote {out} — open it with Excel/LibreOffice for pivot tables")


if __name__ == "__main__":
    main()
