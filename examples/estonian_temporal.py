"""Temporal segregation analysis on the Estonian case study.

The paper's membership input supports validity intervals plus a list of
snapshot dates (§3).  This example builds one segregation cube per
snapshot year, tracks the trend of gender segregation across sectors,
and attaches statistical guards (bootstrap CI and randomisation test) to
the most recent value — distinguishing systematic segregation from what
random allocation would produce.

Run with:  python examples/estonian_temporal.py
"""

from __future__ import annotations

from repro import EstoniaConfig, generate_estonia
from repro.data.estonia import estonia_snapshot_table
from repro.etl.builder import tabular_final_table
from repro.indexes import (
    UnitCounts,
    bootstrap_ci,
    dissimilarity,
    randomization_test,
)
from repro.report.text import bar, render_table


def yearly_counts(dataset, year: int) -> UnitCounts:
    """Per-sector counts of women for one snapshot year."""
    table, schema = estonia_snapshot_table(dataset, year)
    final, _ = tabular_final_table(table, schema, "sector")
    units = final.ints("unitID").data
    minority = final.categorical("gender").mask_eq("F")
    return UnitCounts.from_assignments(units, minority)


def main() -> None:
    dataset = generate_estonia(EstoniaConfig(n_companies=2000, seed=11))
    first, last = dataset.membership.span()
    print(
        f"synthetic Estonia: {dataset.n_individuals} directors, "
        f"{dataset.n_groups} companies, memberships spanning "
        f"[{first}, {last})"
    )

    years = list(range(1997, 2015, 2))
    rows = []
    for year in years:
        counts = yearly_counts(dataset, year)
        d = dissimilarity(counts)
        rows.append(
            [year, int(counts.total), f"{counts.proportion:.3f}", d,
             bar(d, 0.5, 24)]
        )
    print("\nGender segregation across sectors, by snapshot year:")
    print(render_table(["year", "seats", "P(women)", "D", ""], rows))

    latest = yearly_counts(dataset, years[-1])
    ci = bootstrap_ci(dissimilarity, latest, n_boot=300, seed=0)
    test = randomization_test(dissimilarity, latest, n_permutations=300,
                              seed=0)
    print(f"\n{years[-1]} in detail:")
    print(f"  D = {ci.estimate:.3f}, 95% bootstrap CI "
          f"[{ci.low:.3f}, {ci.high:.3f}]")
    print(
        f"  random-allocation baseline = {test.expected_under_null:.3f} "
        f"(systematic excess = {test.excess:.3f}, p = {test.p_value:.4f})"
    )
    if test.p_value < 0.05:
        print("  -> segregation is systematic, not a small-sample artefact")
    else:
        print("  -> indistinguishable from random allocation")


if __name__ == "__main__":
    main()
