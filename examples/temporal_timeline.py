"""A versioned cube timeline over the Estonian temporal case study.

The paper's membership input carries validity intervals plus a list of
snapshot dates (§3).  Instead of rebuilding a cube per date, this
walkthrough:

1. builds the *union* seat table (one row per membership edge) and
   encodes it once;
2. drives the incremental fill engine across the snapshot years —
   contexts untouched by the year's membership churn are carried over
   verbatim, only the affected ones are re-mined and re-filled;
3. persists the years as a timeline: a full snapshot for the first
   year, *delta* snapshots (sharing unchanged columns with their
   parent) afterwards;
4. reopens the timeline and reads analyses straight out of the cubes —
   the gender-segregation trend and the cells that moved the most;
5. repeats the walk in **closed mode** (the closure diff re-derives
   closedness only where covers changed) into a *self-compacting*
   timeline — a measured :class:`CompactionPolicy` re-roots long delta
   chains onto fresh full snapshots at publish time — and reads the
   serving tier's staleness report off the result.

Run with:  python examples/temporal_timeline.py
"""

from __future__ import annotations

from repro import EstoniaConfig, generate_estonia, segregation_trend
from repro.core.trend import temporal_seats_table, trend_rows
from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.compare import timeline_series
from repro.cube.incremental import TemporalCubeEngine
from repro.etl.builder import tabular_final_table
from repro.etl.diff import valid_at
from repro.itemsets.transactions import encode_table
from repro.report.text import render_table
from repro.serve.service import CubeService
from repro.store import (
    CompactionPolicy,
    CubeTimeline,
    dump_into_timeline,
    read_timeline_manifest,
)


def main() -> None:
    dataset = generate_estonia(EstoniaConfig(n_companies=800, seed=11))
    years = list(range(1999, 2014, 2))

    # One union table, one encoding; a year is just a row mask.
    seats, schema, starts, ends = temporal_seats_table(dataset)
    final, final_schema = tabular_final_table(seats, schema, "sector")
    db = encode_table(final, final_schema)
    print(
        f"union seat table: {len(final)} membership rows, "
        f"{db.n_items} items, {db.n_units} sector units"
    )

    engine = TemporalCubeEngine(
        db,
        SegregationDataCubeBuilder(
            engine="incremental", min_population=15, min_minority=5,
            max_sa_items=2, max_ca_items=1,
        ),
    )
    root = "estonia_timeline"
    previous = None
    for year in years:
        valid = valid_at(starts, ends, year)
        if previous is None:
            state = engine.build_at(valid, year)
            dump_into_timeline(root, year, state.cube)
            print(f"{year}: full build, {len(state.cube)} cells "
                  f"({int(valid.sum())} seats) -> full snapshot")
        else:
            state = engine.update(previous, valid, year)
            dump_into_timeline(root, year, state.cube,
                               parent_date=previous.date,
                               parent=previous.cube)
            extra = state.cube.metadata.extra
            print(
                f"{year}: incremental, {extra['n_changed_rows']} rows "
                f"churned, {extra['n_carried_contexts']} contexts carried "
                f"/ {extra['n_recomputed_contexts']} recomputed "
                "-> delta snapshot"
            )
        previous = state

    # Everything below reads from the reopened timeline only.
    timeline = CubeTimeline(root)
    print(f"\nreopened {timeline}")

    points = segregation_trend(
        timeline, years, "sector", {"gender": "F"}, indexes=["D", "Iso"]
    )
    print("\nGender segregation across sectors, read from the cubes:")
    print(render_table(
        ["year", "T", "M", "P", "D", "Iso"], trend_rows(points)
    ))

    movers = timeline_series(timeline, index_name="D", min_minority=10)
    print("Cells whose dissimilarity moved the most across the years:")
    rows = [
        [s.description, f"{s.values[0]:.3f}", f"{s.values[-1]:.3f}",
         f"{s.spread:.3f}"]
        for s in movers[:5]
    ]
    print(render_table(["cell", years[0], years[-1], "spread"], rows))

    # Closed mode rides the same incremental machinery — the closure
    # diff re-derives closedness only for itemsets whose cover digest
    # changed — and the publish-time CompactionPolicy keeps the delta
    # chains short without a separate maintenance job.
    closed_engine = TemporalCubeEngine(
        db,
        SegregationDataCubeBuilder(
            engine="incremental", mode="closed", min_population=15,
            min_minority=5, max_sa_items=2, max_ca_items=1,
        ),
    )
    closed_root = "estonia_timeline_closed"
    policy = CompactionPolicy(max_chain=2)
    previous = None
    for year in years:
        valid = valid_at(starts, ends, year)
        if previous is None:
            state = closed_engine.build_at(valid, year)
            dump_into_timeline(closed_root, year, state.cube,
                               compact=policy)
        else:
            state = closed_engine.update(previous, valid, year)
            dump_into_timeline(closed_root, year, state.cube,
                               parent_date=previous.date,
                               parent=previous.cube, compact=policy)
        previous = state
    extra = previous.cube.metadata.extra
    print(
        f"\nclosed mode at {years[-1]}: {len(previous.cube)} closed "
        f"cells, {extra['n_carried_contexts']} contexts carried / "
        f"{extra['n_recomputed_contexts']} recomputed, "
        f"{extra['n_carried_cells']} cells carried verbatim"
    )
    manifest = read_timeline_manifest(closed_root)
    chains = {
        year: manifest["dates"][str(year)]["chain_length"]
        for year in years
    }
    print(
        f"self-compacting timeline (max_chain={policy.max_chain}): "
        f"per-year chain lengths {chains}"
    )

    staleness = CubeService(closed_root).info()["staleness"]
    print(
        f"serving staleness: latest year {staleness['latest_date']}, "
        f"{staleness['dates_behind']} behind, published "
        f"{staleness['seconds_since_publish']:.1f}s ago"
    )


if __name__ == "__main__":
    main()
