"""Persist and serve a cube: build once, explore forever.

Every earlier example pays the full ETL → mining → fill cost each run.
This one runs the expensive build exactly once, dumps the cube to a
versioned on-disk snapshot (one ``.npy`` per column + a JSON manifest),
then reopens it **memory-mapped** and serves the same discovery
queries — top-k, point lookups, slicing, pivots — with zero rebuild.
The reopened cube is verified cell-identical to the live one.

The same snapshot also serves from the command line::

    python -m repro.serve schools_snapshot top --index D -k 5
    python -m repro.serve schools_snapshot pivot --index D \
        --rows ethnicity --cols city

Run with:  python examples/persist_and_serve.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    CubeService,
    build_cube,
    dump_snapshot,
    generate_schools,
    open_snapshot,
)
from repro.cube.cube import check_same_cells


def main() -> None:
    table, schema = generate_schools()

    # -- the expensive part: runs once -------------------------------
    cube = build_cube(table, schema, min_population=10, min_minority=3)
    snapshot = Path("schools_snapshot")
    dump_snapshot(cube, snapshot)
    files = sorted(p.name for p in snapshot.iterdir())
    print(f"built {len(cube)} cells, dumped snapshot: {', '.join(files)}")

    # -- every later session: reopen, no rebuild ---------------------
    reopened = open_snapshot(snapshot, mmap=True)
    problems = check_same_cells(cube, reopened, atol=0.0)
    print(f"reopened mmapped; parity with live cube: "
          f"{'identical' if not problems else problems[:3]}")

    service = CubeService(reopened)
    print("\nTop segregated contexts served from the snapshot:")
    for found in service.top("D", k=3, min_minority=30):
        print(f"  {found.rank}. {found.description:<45} "
              f"D={found.value:.3f}  M={found.minority}")

    rivertown = service.value(
        "D", sa={"ethnicity": "minority"}, ca={"city": "Rivertown"}
    )
    print(f"\npoint lookup, zero rebuild: D(minority | Rivertown) "
          f"= {rivertown:.3f}")

    print("\nPivot straight off the memory-mapped columns:")
    print(service.pivot("D", "ethnicity", "city"))

    print(f"\nserve the same snapshot from a shell:\n"
          f"  python -m repro.serve {snapshot} top --index D -k 5")


if __name__ == "__main__":
    main()
