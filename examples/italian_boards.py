"""The paper's running case study: gender segregation in Italian boards.

Walks all three demo scenarios (paper §4) on the synthetic Italian
boards dataset:

1. tabular — sectors as organizational units;
2. director graph — communities of connected directors;
3. bipartite — the full pipeline over communities of connected companies.

Prints the headline answers to the demo's three questions and writes the
scenario-3 workbook.

Run with:  python examples/italian_boards.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    ClusteringConfig,
    CubeConfig,
    ItalyConfig,
    PipelineConfig,
    generate_italy,
    run_bipartite,
    run_director_graph,
    run_tabular,
    top_contexts,
)
from repro.core.pipeline import cube_workbook
from repro.data.italy import italy_tabular_individuals
from repro.report.radial import radial_series, render_radial

CUBE = CubeConfig(min_population=20, min_minority=5,
                  max_sa_items=2, max_ca_items=1)


def headline(cube, question: str) -> None:
    women = cube.cell(sa={"gender": "F"})
    print(f"\nQ: {question}")
    print(
        "A: "
        + ", ".join(
            f"{name}={women.value(name):.3f}"
            for name in cube.metadata.index_names
        )
    )
    for found in top_contexts(cube, "D", k=3, min_minority=20):
        print(f"   {found.rank}. {found.description}  D={found.value:.3f}")


def main() -> None:
    dataset = generate_italy(ItalyConfig(n_companies=2000, seed=7))
    print(
        f"synthetic Italy: {dataset.n_individuals} directors, "
        f"{dataset.n_groups} companies, {len(dataset.membership)} "
        "board memberships"
    )

    # Scenario 1 — tabular, sector = unit.
    seats, schema = italy_tabular_individuals(dataset)
    s1 = run_tabular(seats, schema, "sector", CUBE)
    headline(s1.cube, "how much are women segregated in company sectors?")

    # Scenario 2 — director graph communities.
    s2 = run_director_graph(
        dataset,
        clustering_config=ClusteringConfig(method="components"),
        cube_config=CUBE,
    )
    headline(
        s2.cube,
        "how much are women segregated in communities of connected "
        f"directors? ({s2.n_units} communities)",
    )

    # Scenario 3 — bipartite pipeline, company communities.
    s3 = run_bipartite(
        dataset,
        PipelineConfig(
            clustering=ClusteringConfig(method="threshold", min_weight=2.0),
            cube=CUBE,
        ),
    )
    headline(
        s3.cube,
        "how much are women segregated in communities of connected "
        f"companies? ({s3.n_units} communities)",
    )

    # The Fig. 5 radial view: per-sector indexes of women across provinces.
    by_province = run_tabular(
        seats, schema, "province",
        CubeConfig(min_population=15, min_minority=5, max_sa_items=1,
                   max_ca_items=1),
    )
    series = radial_series(by_province.cube, "sector", sa={"gender": "F"},
                           index_names=["D", "Iso"])
    print("\nPer-sector view (women across provinces):")
    print(render_radial(series, digits=2, width=18))

    out = Path("italy_scube.xlsx")
    cube_workbook(s3.cube).save(out)
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
