"""Serve a cube over HTTP: one snapshot, many readers, no rebuild.

``persist_and_serve.py`` reopened a snapshot in-process; this example
puts the same snapshot behind the stdlib-only WSGI tier.  It builds the
schools cube once, dumps it twice — as a single snapshot and fanned
across 4 hash shards — then stands up ``make_app`` over each and walks
the whole endpoint surface with the in-process test client (no socket,
same app object a real server would mount).  Along the way it shows the
three guarantees the tier makes:

* every body is canonical JSON, byte-identical to the in-process
  payload builders;
* the sharded router is invisible: the same queries return the same
  bytes as the single snapshot;
* the hot-query LRU answers repeats from memory — ``/info`` exposes the
  hit/miss counters.

To serve the same snapshot to real clients, run::

    python -m repro.serve schools_snapshot serve --port 8000
    curl 'http://127.0.0.1:8000/top?index=D&k=5'

Run with:  python examples/serve_http.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import (
    build_cube,
    dump_sharded_snapshot,
    dump_snapshot,
    generate_schools,
)
from repro.serve.http import make_app, wsgi_get


def show(app, query: str) -> bytes:
    status, _, body = wsgi_get(app, query)
    text = body.decode()
    print(f"  GET {query:<48} -> {status}  "
          f"{text[:64]}{'...' if len(text) > 64 else ''}")
    return body


def main() -> None:
    table, schema = generate_schools()
    cube = build_cube(table, schema, min_population=10, min_minority=3)

    single = Path("schools_snapshot")
    sharded = Path("schools_sharded")
    dump_snapshot(cube, single)
    dump_sharded_snapshot(cube, sharded, by="hash", n_shards=4)
    print(f"built {len(cube)} cells; dumped one snapshot and 4 hash shards")

    app = make_app(single)
    print("\nThe endpoint surface (single snapshot):")
    bodies = {
        query: show(app, query)
        for query in (
            "/info",
            "/dates",
            "/top?index=D&k=3&min_minority=30",
            "/slice?ca=city%3DRivertown",
            "/cell?sa=ethnicity%3Dminority&ca=city%3DRivertown",
            "/children?sa=ethnicity%3Dminority",
            "/parents?sa=ethnicity%3Dminority&ca=city%3DRivertown",
            "/pivot?index=D&rows=ethnicity&cols=city",
        )
    }

    top = json.loads(bodies["/top?index=D&k=3&min_minority=30"])
    print("\nmost segregated contexts, straight off the wire:")
    for found in top:
        print(f"  {found['rank']}. {found['cell']:<45} "
              f"D={found['value']:.3f}")

    sharded_app = make_app(sharded)
    print("\nThe sharded router answers with the same bytes:")
    for query, body in bodies.items():
        if query in ("/info", "/dates"):    # live counters / layout differ
            continue
        assert wsgi_get(sharded_app, query)[2] == body, query
    print("  6 endpoints x 4 shards: byte-identical to the single snapshot")

    # Repeats hit the LRU: ask the same top twice more and read /info.
    for _ in range(2):
        wsgi_get(app, "/top?index=D&k=3&min_minority=30")
    stats = json.loads(wsgi_get(app, "/info")[2])["cache"]
    print(f"\nhot-query cache after the repeats: "
          f"{stats['hits']} hits / {stats['misses']} misses "
          f"({stats['size']} entries)")

    print(f"\nserve the same snapshot to real clients:\n"
          f"  python -m repro.serve {single} serve --port 8000")


if __name__ == "__main__":
    main()
