"""Out-of-core build: stream a big CSV → parallel fill → snapshot → serve.

The other examples materialise their finalTable in memory before
building.  This walkthrough is the 10M-row recipe (benchmark E21) at
demo scale: the input exists only as a CSV on disk, is streamed back in
fixed-size chunks, folded append-only into the transaction store under a
spill budget, filled with the multiprocess ``engine="parallel"`` —
bit-identical to the single-process engine — and the result is dumped to
a snapshot that serves queries with zero rebuild.  Peak memory is set by
the chunk / window / batch knobs, not by the row count: the same script
handles 10M rows by changing ``N_ROWS`` alone.

Run with:  python examples/big_build.py
"""

from __future__ import annotations

from pathlib import Path

from repro import CubeService, dump_snapshot, open_snapshot
from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.data.synthetic import write_random_final_table_csv
from repro.etl.stream import stream_csv
from repro.itemsets.transactions import EncodeAccumulator

N_ROWS = 40_000          # turn this up to 10_000_000 — nothing else changes
CHUNK_ROWS = 8_192
SPILL_BUDGET = 1 << 20   # spill encode buffers past 1 MB of RAM


def main() -> None:
    # -- 1. the input lives on disk, never fully in memory -----------
    csv_path = Path("big_final_table.csv")
    schema = write_random_final_table_csv(
        csv_path, N_ROWS, n_units=150,
        sa_attributes={"gender": 2, "age": 3},
        ca_attributes={"region": 4, "sector": 3},
        seed=21, skew=0.5, chunk_rows=CHUNK_ROWS,
    )
    size_mb = csv_path.stat().st_size / (1 << 20)
    print(f"wrote {N_ROWS} rows ({size_mb:.1f} MB) without building a table")

    # -- 2. stream + fold into the CSR transaction store -------------
    accumulator = EncodeAccumulator(schema, spill_bytes=SPILL_BUDGET)
    for chunk in stream_csv(csv_path, schema=schema, chunk_rows=CHUNK_ROWS):
        accumulator.add_chunk(chunk)
    spilled = accumulator.spilled
    db = accumulator.finalize()
    print(f"encoded {len(db)} rows, {db.n_items} items, "
          f"{db.n_units} units (spilled to scratch: {spilled})")

    # -- 3. multiprocess mine + fill, bit-identical to single-process -
    limits = {"min_population": 0.002, "min_minority": 0.0005}
    parallel = SegregationDataCubeBuilder(
        engine="parallel", workers=2, mine_workers=2, **limits
    ).build_from_transactions(db)
    columnar = SegregationDataCubeBuilder(
        **limits
    ).build_from_transactions(db)
    problems = check_same_cells(columnar, parallel, atol=0.0)
    print(f"parallel fill: {len(parallel)} cells in "
          f"{parallel.metadata.build_seconds:.2f}s with "
          f"{parallel.metadata.extra['workers']} fill + "
          f"{parallel.metadata.extra['mine_workers']} mine workers; "
          f"parity vs columnar: "
          f"{'identical' if not problems else problems[:3]}")

    # -- 4. snapshot + serve: later sessions skip all of the above ---
    snapshot = Path("big_snapshot")
    dump_snapshot(parallel, snapshot)
    service = CubeService(open_snapshot(snapshot, mmap=True))
    print("\nTop segregated contexts, served from the snapshot:")
    for found in service.top("D", k=3):
        print(f"  {found.rank}. {found.description:<45} "
              f"D={found.value:.3f}  M={found.minority}")
    print(f"\nsame snapshot from a shell:\n"
          f"  python -m repro.serve {snapshot} top --index D -k 5")


if __name__ == "__main__":
    main()
