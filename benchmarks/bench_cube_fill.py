"""E17 — cube fill shoot-out: per-cell loop vs columnar batched engine.

PR 1-2 made cover intersection fast; this experiment pins the next layer
down: filling the cube's cells.  The per-cell reference path runs one
``unit_counts`` scan and six scalar index evaluations per mined cell;
the columnar engine counts every cell through one grouped
``unit_counts_many`` pass and evaluates each index with one batched
kernel call per context, landing results directly in the
struct-of-arrays ``CellTable``.

Assertions pin the refactor's contract at >= 100k rows: the two engines
produce *identical* cubes (checked with zero tolerance) with the
columnar fill at least 2x faster, and the array-routed top-k ranking at
least 2x faster than the per-object sort it replaced.
"""

from __future__ import annotations

import time

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.coordinates import describe_key
from repro.cube.cube import SegregationCube, check_same_cells
from repro.data.synthetic import random_final_table
from repro.itemsets.transactions import encode_table
from repro.report.text import render_table

from benchmarks.conftest import write_bench_json, write_result

FILL_ROWS = 120_000
TOPK_REPS = 5
LIMITS = {"min_population": 60, "min_minority": 15,
          "max_sa_items": 2, "max_ca_items": 2}


def _fill_table(n_rows: int, seed: int = 9):
    return random_final_table(
        n_rows=n_rows,
        n_units=60,
        sa_attributes={"g": 2, "a": 4, "b": 3},
        ca_attributes={"r": 5, "s": 4},
        multi_valued_ca={"mv": 4},
        seed=seed,
        skew=0.5,
    )


def _top_reference(cube: SegregationCube, index_name: str, k: int,
                   min_minority: int, min_units: int = 2):
    """The pre-columnar ranking: sort *all* candidate cell objects."""
    candidates = [
        stats
        for stats in cube
        if not stats.is_context_only
        and stats.is_defined(index_name)
        and stats.minority >= min_minority
        and stats.n_units >= min_units
    ]
    candidates.sort(
        key=lambda s: (
            -s.value(index_name),
            describe_key(s.key, cube.dictionary),
        )
    )
    return candidates[:k]


def test_cube_fill_columnar_vs_percell(benchmark):
    """Mined once, filled twice: columnar must beat per-cell by >= 2x."""
    table, schema = _fill_table(FILL_ROWS)
    builder = SegregationDataCubeBuilder(**LIMITS)
    db = encode_table(table, schema)
    db.covers()                      # vertical layout shared by both fills

    def run():
        start = time.perf_counter()
        mined = builder.mine_coordinates(db)
        mine_seconds = time.perf_counter() - start

        start = time.perf_counter()
        percell_cells = builder._fill_percell(db, mined)
        percell_seconds = time.perf_counter() - start

        start = time.perf_counter()
        columnar_store = builder._fill_columnar(db, mined)
        columnar_seconds = time.perf_counter() - start
        return (mined, percell_cells, columnar_store, mine_seconds,
                percell_seconds, columnar_seconds)

    (mined, percell_cells, columnar_store, mine_seconds, percell_seconds,
     columnar_seconds) = benchmark.pedantic(run, rounds=1, iterations=1)

    # Identical cubes, bit for bit.
    metadata_kwargs = dict(
        index_names=[s.name for s in builder.indexes],
        min_population=mined.minsup_pop, min_minority=mined.minsup_min,
        n_rows=len(db), n_units=db.n_units, mode="all", backend="eclat",
    )
    from repro.cube.cube import CubeMetadata

    percell_cube = SegregationCube(
        percell_cells, db.dictionary, CubeMetadata(**metadata_kwargs)
    )
    columnar_cube = SegregationCube(
        columnar_store, db.dictionary, CubeMetadata(**metadata_kwargs)
    )
    assert list(columnar_cube.keys()) == list(percell_cube.keys())
    assert check_same_cells(columnar_cube, percell_cube, atol=0.0) == []

    fill_speedup = percell_seconds / columnar_seconds

    # Top-k query latency: array-routed ranking vs per-object sort.
    k, guard = 10, 2 * mined.minsup_min
    start = time.perf_counter()
    for _ in range(TOPK_REPS):
        reference = _top_reference(columnar_cube, "D", k, guard)
    reference_seconds = (time.perf_counter() - start) / TOPK_REPS
    start = time.perf_counter()
    for _ in range(TOPK_REPS):
        ranked = columnar_cube.top("D", k=k, min_minority=guard)
    topk_seconds = (time.perf_counter() - start) / TOPK_REPS
    assert [s.key for s in ranked] == [s.key for s in reference]
    topk_speedup = reference_seconds / topk_seconds

    rows = [
        ["mine (shared)", FILL_ROWS, mine_seconds * 1e3, "", ""],
        ["fill per-cell", FILL_ROWS, percell_seconds * 1e3, 1.0,
         len(percell_cube)],
        ["fill columnar", FILL_ROWS, columnar_seconds * 1e3, fill_speedup,
         len(columnar_cube)],
        ["top-10 per-object sort", FILL_ROWS, reference_seconds * 1e3,
         1.0, ""],
        ["top-10 argpartition", FILL_ROWS, topk_seconds * 1e3,
         topk_speedup, ""],
    ]
    write_result(
        "E17_cube_fill",
        "Cube fill + top-k by engine (identical cells asserted, atol=0)\n"
        + render_table(
            ["stage", "rows", "time (ms)", "speedup", "cells"], rows
        ),
    )
    write_bench_json("E17", {
        "rows": FILL_ROWS,
        "cells": len(columnar_cube),
        "mine_ms": mine_seconds * 1e3,
        "fill_percell_ms": percell_seconds * 1e3,
        "fill_columnar_ms": columnar_seconds * 1e3,
        "fill_speedup": fill_speedup,
        "top10_object_sort_ms": reference_seconds * 1e3,
        "top10_argpartition_ms": topk_seconds * 1e3,
        "top10_speedup": topk_speedup,
    })
    assert fill_speedup >= 2.0, (
        f"columnar fill only {fill_speedup:.2f}x faster than per-cell"
    )
    assert topk_speedup >= 2.0, (
        f"array top-k only {topk_speedup:.2f}x faster than object sort"
    )
