"""E13 — EWAH compressed bitmaps vs dense NumPy boolean covers.

The original SCube uses JavaEWAH for cover storage (paper footnote 6).
This bench quantifies the trade-off on our substrate: compressed size
(the reason EWAH exists) against the cost of AND + popcount, on sparse,
clustered and dense covers.

Expected shape: EWAH compresses sparse/clustered covers by orders of
magnitude; pure-Python word streaming loses to vectorised NumPy on
throughput — which is why the miner defaults to dense covers and EWAH
remains the storage-faithful option.
"""

from __future__ import annotations

import time

import numpy as np

from repro.itemsets.bitmap import EWAHBitmap
from repro.report.text import render_table

from benchmarks.conftest import write_result

SIZE = 200_000


def _make_cover(kind: str, rng: np.random.Generator) -> np.ndarray:
    if kind == "sparse(0.1%)":
        return rng.random(SIZE) < 0.001
    if kind == "clustered":
        cover = np.zeros(SIZE, dtype=bool)
        for _ in range(20):
            start = int(rng.integers(0, SIZE - 5000))
            cover[start:start + 5000] = True
        return cover
    return rng.random(SIZE) < 0.5        # dense(50%)


def test_bitmap_tradeoff(benchmark):
    rng = np.random.default_rng(0)

    def run_all():
        rows = []
        for kind in ("sparse(0.1%)", "clustered", "dense(50%)"):
            a, b = _make_cover(kind, rng), _make_cover(kind, rng)
            ea, eb = EWAHBitmap.from_bools(a), EWAHBitmap.from_bools(b)

            start = time.perf_counter()
            for _ in range(5):
                numpy_count = int((a & b).sum())
            numpy_seconds = (time.perf_counter() - start) / 5

            start = time.perf_counter()
            ewah_count = ea.intersect_count(eb)
            ewah_seconds = time.perf_counter() - start

            assert numpy_count == ewah_count
            rows.append(
                [
                    kind,
                    ea.compression_ratio(),
                    ea.memory_words() * 8,
                    SIZE // 8,
                    numpy_seconds * 1e3,
                    ewah_seconds * 1e3,
                ]
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rendered = render_table(
        ["cover", "compression", "EWAH bytes", "dense bytes",
         "numpy AND (ms)", "EWAH AND (ms)"],
        rows,
    )
    write_result(
        "E13_bitmap",
        f"Compressed vs dense covers ({SIZE} transactions)\n" + rendered,
    )
    by_kind = {r[0]: r for r in rows}
    assert by_kind["sparse(0.1%)"][1] > 5, "sparse covers must compress"
    assert by_kind["clustered"][1] > 10, "clustered covers must compress"
    assert by_kind["dense(50%)"][1] < 2, "random dense covers cannot compress"
