"""E14 — cover-engine shoot-out: dense boolean vs packed vs EWAH covers.

The cover representation sits under the hottest loop in the system (the
Eclat DFS intersects a cover and popcounts it at every lattice node), so
this bench pits the three codecs against each other on the synthetic
generator at 100k+ rows:

* ``bool``   — dense byte-per-transaction NumPy booleans (the seed
  implementation, kept as the baseline codec);
* ``packed`` — ``uint64`` packed bitmaps (the default engine);
* ``ewah``   — run-length compressed bitmaps (the paper's JavaEWAH
  choice, pure-Python word streaming).

Assertions pin the refactor's contract: identical mined supports and
cube cells across codecs, with packed mining at least 2× faster than the
dense-boolean baseline.  Besides the paper-style text tables, the
mining shoot-out emits machine-readable ``results/BENCH_E14.json`` so
the codec trajectory can be regressed on like E17/E18/E19.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.data.synthetic import random_final_table
from repro.itemsets.eclat import mine_eclat
from repro.itemsets.transactions import encode_table
from repro.report.text import render_table

from benchmarks.conftest import write_bench_json, write_result

MINE_ROWS = 200_000
MINE_MINSUP = 250
EWAH_MINE_ROWS = 20_000
PAIR_SIZE = 200_000


def _mining_table(n_rows: int, seed: int = 3):
    return random_final_table(
        n_rows=n_rows,
        n_units=50,
        sa_attributes={"g": 2, "a": 4, "b": 3},
        ca_attributes={"r": 5, "s": 4},
        multi_valued_ca={"mv": 4},
        seed=seed,
        skew=0.5,
    )


def _time_mine(db, minsup: int) -> tuple[float, dict]:
    db.covers()                       # build the vertical layout up front
    start = time.perf_counter()
    supports = mine_eclat(db, minsup)
    return time.perf_counter() - start, supports


def test_cover_engine_mining(benchmark):
    """Full eclat mine at 200k rows: packed must beat bool by >= 2x."""
    table, schema = _mining_table(MINE_ROWS)

    def run():
        results = {}
        for codec in ("bool", "packed"):
            db = encode_table(table, schema, codec=codec)
            results[codec] = _time_mine(db, MINE_MINSUP)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bool_seconds, bool_supports = results["bool"]
    packed_seconds, packed_supports = results["packed"]
    assert packed_supports == bool_supports, "codecs must mine identically"

    # EWAH is pure-Python word streaming; compare equality at smaller n.
    small_table, small_schema = _mining_table(EWAH_MINE_ROWS)
    small = {
        codec: _time_mine(encode_table(small_table, small_schema, codec=codec),
                          MINE_MINSUP // 10)
        for codec in ("bool", "packed", "ewah")
    }
    assert small["ewah"][1] == small["packed"][1] == small["bool"][1]

    speedup = bool_seconds / packed_seconds
    rows = [
        ["bool", MINE_ROWS, bool_seconds * 1e3, 1.0, len(bool_supports)],
        ["packed", MINE_ROWS, packed_seconds * 1e3, speedup,
         len(packed_supports)],
        ["bool", EWAH_MINE_ROWS, small["bool"][0] * 1e3,
         small["bool"][0] / small["bool"][0], len(small["bool"][1])],
        ["packed", EWAH_MINE_ROWS, small["packed"][0] * 1e3,
         small["bool"][0] / small["packed"][0], len(small["packed"][1])],
        ["ewah", EWAH_MINE_ROWS, small["ewah"][0] * 1e3,
         small["bool"][0] / small["ewah"][0], len(small["ewah"][1])],
    ]
    write_result(
        "E14_cover_engine_mining",
        "Eclat mining by cover codec (identical supports asserted)\n"
        + render_table(
            ["codec", "rows", "mine (ms)", "speedup vs bool", "itemsets"],
            rows,
        ),
    )
    write_bench_json("E14", {
        "rows": MINE_ROWS,
        "itemsets": len(packed_supports),
        "bool_mine_ms": bool_seconds * 1e3,
        "packed_mine_ms": packed_seconds * 1e3,
        "packed_speedup_vs_bool": speedup,
        "ewah_rows": EWAH_MINE_ROWS,
        "ewah_mine_ms": small["ewah"][0] * 1e3,
        "min_speedup_required": 2.0,
    })
    assert speedup >= 2.0, (
        f"packed covers only {speedup:.2f}x faster than dense booleans"
    )


def test_cover_engine_intersection(benchmark):
    """Single cover AND + support across codecs at 200k transactions."""
    rng = np.random.default_rng(0)
    from repro.itemsets.coverset import get_codec

    def run():
        rows = []
        for density, label in ((0.001, "sparse(0.1%)"), (0.2, "20%"),
                               (0.5, "dense(50%)")):
            a = rng.random(PAIR_SIZE) < density
            b = rng.random(PAIR_SIZE) < density
            expected = int((a & b).sum())
            row = [label]
            for codec in ("bool", "packed", "ewah"):
                cls = get_codec(codec)
                ca, cb = cls.from_bools(a), cls.from_bools(b)
                reps = 20 if codec != "ewah" else 3
                start = time.perf_counter()
                for _ in range(reps):
                    support = (ca & cb).support()
                seconds = (time.perf_counter() - start) / reps
                assert support == expected
                row.append(seconds * 1e6)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "E14_cover_engine_intersection",
        f"AND + popcount per pair ({PAIR_SIZE} transactions)\n"
        + render_table(
            ["cover", "bool (us)", "packed (us)", "ewah (us)"], rows
        ),
    )
    for row in rows:
        assert row[2] < row[1], f"packed slower than bool on {row[0]}"


def test_cover_engine_cube_cells():
    """Cube cells are identical across all three codecs (both modes)."""
    table, schema = random_final_table(
        n_rows=4_000, n_units=12,
        sa_attributes={"g": 2, "a": 3},
        ca_attributes={"r": 3},
        multi_valued_ca={"mv": 3},
        seed=11, skew=0.5,
    )
    limits = {"min_population": 20, "min_minority": 5,
              "max_sa_items": 2, "max_ca_items": 2}
    cubes = {
        codec: SegregationDataCubeBuilder(codec=codec, **limits).build(
            table, schema
        )
        for codec in ("bool", "packed", "ewah")
    }
    assert check_same_cells(cubes["bool"], cubes["packed"]) == []
    assert check_same_cells(cubes["bool"], cubes["ewah"]) == []
    closed = SegregationDataCubeBuilder(
        codec="packed", mode="closed", **limits
    ).build(table, schema)
    for key in cubes["bool"].keys():
        cell = closed.cell_by_key(key)
        assert cell is not None
        assert cell.population == cubes["bool"].cell_by_key(key).population
