"""E1 — Fig. 1: the segregation data cube with dissimilarity index.

Regenerates the paper's opening figure: a cube over SA axes sex × age
and CA axis region, every cell holding the dissimilarity of the selected
subgroup across organizational units (company sectors), with ``⋆``
rows/columns and "-" for undefined cells.
"""

from __future__ import annotations

from repro.core.config import CubeConfig
from repro.core.scenarios import run_tabular
from repro.data.italy import italy_tabular_individuals
from repro.report.pivot import pivot

from benchmarks.conftest import write_result


def _build(italy):
    seats, schema = italy_tabular_individuals(italy)
    return run_tabular(
        seats,
        schema,
        "sector",
        CubeConfig(min_population=20, min_minority=5,
                   max_sa_items=2, max_ca_items=1),
    )


def test_fig1_segregation_cube(benchmark, italy):
    result = benchmark.pedantic(_build, args=(italy,), rounds=3, iterations=1)
    cube = result.cube
    sections = [
        "Fig. 1 — segregation data cube, dissimilarity index D",
        f"(units = {result.n_units} company sectors, "
        f"{cube.metadata.n_rows} board seats)",
    ]
    for region in ("north", "centre", "south", "*"):
        fixed = None if region == "*" else {"region": region}
        sections.append(f"\nregion = {region}")
        sections.append(
            pivot(cube, "D", "gender", "age", fixed_ca=fixed, digits=2)
        )
    write_result("E1_fig1_cube", "\n".join(sections))
    assert cube.cell(sa={"gender": "F"}) is not None
    assert len(cube) > 20
