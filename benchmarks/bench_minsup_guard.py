"""E16 — Ablation: the minimum-support threshold as a statistical guard.

The paper prunes cells below frequency thresholds; this bench shows why
that is a *statistical* safeguard and not just an efficiency knob.
Dissimilarity has a well-known small-sample bias: under *random*
allocation of a minority of size M over the units, the expected D is
far above zero when M is small.  As ``min_minority`` drops, the
discovery ranking fills with small contexts whose index values are
inflated by exactly that bias.

Expected shape: the mean random-allocation baseline (and hence the share
of the discovered index value that is bias, not signal) grows as the
support threshold falls.
"""

from __future__ import annotations

from repro.core.config import CubeConfig
from repro.core.scenarios import run_tabular
from repro.cube.explorer import top_contexts
from repro.data.italy import italy_tabular_individuals
from repro.etl.builder import tabular_final_table
from repro.indexes.base import get_index
from repro.indexes.counts import UnitCounts
from repro.indexes.inference import randomization_test
from repro.report.text import render_table

from benchmarks.conftest import write_result


def test_minsup_statistical_guard(benchmark, italy):
    seats, schema = italy_tabular_individuals(italy)
    final, final_schema = tabular_final_table(seats, schema, "sector")

    from repro.itemsets.transactions import encode_table

    db = encode_table(final, final_schema)
    d_index = get_index("D")

    def sweep():
        rows = []
        for min_minority in (40, 20, 10, 5):
            result = run_tabular(
                seats,
                schema,
                "sector",
                CubeConfig(indexes=["D"], min_population=10,
                           min_minority=min_minority,
                           max_sa_items=2, max_ca_items=1),
            )
            found = top_contexts(result.cube, "D", k=15,
                                 min_minority=min_minority)
            observed_sum = 0.0
            baseline_sum = 0.0
            significant = 0
            for discovery in found:
                # Rebuild the cell's per-unit counts from covers.
                cell = next(
                    c for c in result.cube
                    if result.cube.describe(c.key) == discovery.description
                )
                context_cover = db.cover_of(cell.ca_items)
                minority_cover = context_cover & db.cover_of(cell.sa_items)
                counts = UnitCounts(
                    db.unit_counts(context_cover),
                    db.unit_counts(minority_cover),
                )
                test = randomization_test(
                    d_index.compute, counts, n_permutations=200, seed=0
                )
                observed_sum += test.observed
                baseline_sum += test.expected_under_null
                if test.p_value < 0.05:
                    significant += 1
            k = len(found)
            rows.append(
                [
                    min_minority,
                    len(result.cube),
                    observed_sum / k,
                    baseline_sum / k,
                    baseline_sum / observed_sum,
                    significant,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rendered = render_table(
        ["min_minority", "cells", "mean top-15 D", "random baseline",
         "bias share", "significant"],
        rows,
    )
    write_result(
        "E16_minsup_guard",
        "The support threshold as statistical guard: random-allocation\n"
        "baseline of D among the top-15 discoveries (200 permutations)\n"
        + rendered,
    )
    assert rows[0][1] <= rows[-1][1], "lower threshold -> more cells"
    # The guard-rail shape: the small-sample bias grows as the support
    # threshold drops, so low-threshold discoveries overstate segregation.
    assert rows[-1][3] > rows[0][3], "bias must grow as threshold falls"
