"""E18 — snapshot store and zero-rebuild serving vs rebuild-from-rows.

PR 3 made the cube columnar; this experiment pins the payoff of the
snapshot store built on top of it: once a cube is dumped to disk (one
``.npy`` per column plus a JSON manifest), an exploration session never
pays the ETL → mining → fill cost again — it reopens the snapshot,
memory-mapped, and queries it directly.

Measured on the E17 dataset (120k rows, same thresholds):

* ``rebuild``    — encode + mine + fill from rows (what every session
  paid before the store existed);
* ``dump``       — snapshot write;
* ``cold open``  — ``open_snapshot(mmap=True)`` + first ``top(10)``
  (manifest parse, mmap setup, lazy key decode, ranking);
* ``warm open``  — the same open + top once OS caches are hot, i.e.
  steady-state serving start;
* ``warm top``   — ``top(10)`` on an already-open snapshot.

Assertions pin the contract: the reopened cube is cell-identical to the
live one (``check_same_cells`` at atol=0) with identical top/slice
output, and warm open + top-10 is at least 50x faster than the rebuild.
Numbers land in ``results/E18_snapshot_serving.txt`` (paper-style
table) and ``results/BENCH_E18.json`` (machine-readable trajectory).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.store.snapshot import dump_snapshot, open_snapshot
from repro.report.text import render_table

from benchmarks.bench_cube_fill import FILL_ROWS, LIMITS, _fill_table
from benchmarks.conftest import write_bench_json, write_result

MIN_SPEEDUP = 50.0
WARM_REPS = 5


def _open_and_top(path: Path):
    cube = open_snapshot(path, mmap=True)
    return cube, cube.top("D", k=10, min_minority=2 * LIMITS["min_minority"])


def test_snapshot_write_open_serve(benchmark, tmp_path):
    """Warm mmap-open + top-10 must beat rebuild-from-rows by >= 50x."""
    table, schema = _fill_table(FILL_ROWS)
    builder = SegregationDataCubeBuilder(**LIMITS)
    snap = tmp_path / "e18_snapshot"

    def run():
        start = time.perf_counter()
        live = builder.build(table, schema)
        rebuild_seconds = time.perf_counter() - start

        start = time.perf_counter()
        dump_snapshot(live, snap)
        dump_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cold_cube, cold_top = _open_and_top(snap)
        cold_seconds = time.perf_counter() - start
        return live, cold_cube, cold_top, rebuild_seconds, dump_seconds, cold_seconds

    (live, cold_cube, cold_top, rebuild_seconds, dump_seconds,
     cold_seconds) = benchmark.pedantic(run, rounds=1, iterations=1)

    # Steady-state serving start: open + first ranking with hot caches.
    warm_open_seconds = float("inf")
    for _ in range(WARM_REPS):
        start = time.perf_counter()
        warm_cube, warm_top = _open_and_top(snap)
        warm_open_seconds = min(warm_open_seconds,
                                time.perf_counter() - start)

    # Query latency once a snapshot is already open.
    start = time.perf_counter()
    for _ in range(WARM_REPS):
        served_top = warm_cube.top(
            "D", k=10, min_minority=2 * LIMITS["min_minority"]
        )
    warm_top_seconds = (time.perf_counter() - start) / WARM_REPS

    # Parity: identical cells, identical query output, live vs snapshot.
    live_top = live.top("D", k=10, min_minority=2 * LIMITS["min_minority"])
    assert check_same_cells(live, cold_cube, atol=0.0) == []
    assert [s.key for s in cold_top] == [s.key for s in live_top]
    assert [s.key for s in warm_top] == [s.key for s in live_top]
    assert [s.key for s in served_top] == [s.key for s in live_top]
    sliced_live = live.slice(ca={"r": "r0"})
    sliced_snap = warm_cube.slice(ca={"r": "r0"})
    assert [s.key for s in sliced_live] == [s.key for s in sliced_snap]

    snapshot_bytes = sum(
        f.stat().st_size for f in snap.iterdir() if f.is_file()
    )
    open_speedup = rebuild_seconds / warm_open_seconds

    rows = [
        ["rebuild from rows (encode+mine+fill)", rebuild_seconds * 1e3, 1.0],
        ["snapshot dump", dump_seconds * 1e3, ""],
        ["cold mmap open + top-10", cold_seconds * 1e3,
         rebuild_seconds / cold_seconds],
        ["warm mmap open + top-10", warm_open_seconds * 1e3, open_speedup],
        ["warm top-10 (open snapshot)", warm_top_seconds * 1e3,
         rebuild_seconds / warm_top_seconds],
    ]
    write_result(
        "E18_snapshot_serving",
        f"Snapshot store vs rebuild at {FILL_ROWS} rows, "
        f"{len(live)} cells, {snapshot_bytes} snapshot bytes "
        "(cell parity asserted, atol=0)\n"
        + render_table(["stage", "time (ms)", "speedup vs rebuild"], rows),
    )
    write_bench_json("E18", {
        "rows": FILL_ROWS,
        "cells": len(live),
        "snapshot_bytes": snapshot_bytes,
        "rebuild_ms": rebuild_seconds * 1e3,
        "dump_ms": dump_seconds * 1e3,
        "cold_open_top10_ms": cold_seconds * 1e3,
        "warm_open_top10_ms": warm_open_seconds * 1e3,
        "warm_top10_ms": warm_top_seconds * 1e3,
        "warm_open_speedup_vs_rebuild": open_speedup,
        "min_speedup_required": MIN_SPEEDUP,
    })
    assert open_speedup >= MIN_SPEEDUP, (
        f"warm mmap open + top-10 only {open_speedup:.1f}x faster than "
        f"rebuild-from-rows (need >= {MIN_SPEEDUP}x)"
    )
