"""E11 — Mining engine ablation: closed vs all frequent itemsets, and the
three mining backends.

The original SCube delegates to Borgelt's FPGrowth mining *closed*
itemsets; this bench measures why on our substrate: the count of closed
itemsets vs all frequent itemsets as minsup drops, and the relative
speed of eclat / fpgrowth / apriori.

Expected shape: closed counts grow much more slowly than frequent counts
as minsup decreases; apriori falls behind the depth-first miners.
"""

from __future__ import annotations

import time

from repro.data.italy import italy_tabular_individuals
from repro.etl.builder import tabular_final_table
from repro.itemsets.miner import mine
from repro.itemsets.transactions import encode_table
from repro.report.text import render_table

from benchmarks.conftest import write_result


def _database(italy):
    seats, schema = italy_tabular_individuals(italy)
    final, final_schema = tabular_final_table(seats, schema, "sector")
    return encode_table(final, final_schema)


def test_closed_vs_all_itemsets(benchmark, italy):
    db = _database(italy)

    def sweep():
        rows = []
        for minsup in (0.05, 0.02, 0.01, 0.005):
            start = time.perf_counter()
            all_sets = mine(db, minsup, backend="eclat")
            all_seconds = time.perf_counter() - start
            start = time.perf_counter()
            closed = mine(db, minsup, backend="eclat", closed=True)
            closed_seconds = time.perf_counter() - start
            rows.append(
                [
                    minsup,
                    len(all_sets),
                    len(closed),
                    len(closed) / max(1, len(all_sets)),
                    all_seconds,
                    closed_seconds,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rendered = render_table(
        ["minsup", "frequent", "closed", "closed/frequent",
         "mine-all (s)", "mine-closed (s)"],
        rows,
    )
    lines = ["Closed vs all frequent itemsets (Italy seats table)", rendered]

    backend_rows = []
    for backend in ("eclat", "fpgrowth", "apriori"):
        start = time.perf_counter()
        result = mine(db, 0.01, backend=backend)
        backend_rows.append([backend, len(result),
                             time.perf_counter() - start])
    lines += [
        "",
        "backend comparison at minsup=1%:",
        render_table(["backend", "itemsets", "seconds"], backend_rows),
    ]
    write_result("E11_closed_vs_all", "\n".join(lines))

    counts = {r[0]: (r[1], r[2]) for r in rows}
    lowest = counts[0.005]
    assert lowest[1] <= lowest[0], "closed sets are a subset"
    # All backends agree on the itemset count.
    assert len({r[1] for r in backend_rows}) == 1
