"""E5 — Fig. 5 (bottom): radial plot of the six indexes per company sector.

The paper shows, for directors in each of the 20 Italian company
sectors, a radial plot of the segregation indexes.  We regenerate the
series behind the plot: for every sector (CA coordinate), the six index
values of women across provinces (organizational units = provinces, so
that a per-sector index is well defined; see EXPERIMENTS.md for the
interpretation note).

Expected shape: male-dominated sectors (construction, mining,
transports) and mixed sectors (education, health, domestic) sit at
opposite ends of the isolation/interaction spokes, mirroring the paper's
qualitative reading.
"""

from __future__ import annotations

from repro.core.config import CubeConfig
from repro.core.scenarios import run_tabular
from repro.data.italy import italy_tabular_individuals
from repro.report.radial import radial_series, render_radial

from benchmarks.conftest import write_result


def _build(italy):
    seats, schema = italy_tabular_individuals(italy)
    return run_tabular(
        seats,
        schema,
        "province",
        CubeConfig(min_population=15, min_minority=5,
                   max_sa_items=1, max_ca_items=1),
    )


def test_fig5_sector_radial(benchmark, italy):
    result = benchmark.pedantic(_build, args=(italy,), rounds=3, iterations=1)
    series = radial_series(result.cube, "sector", sa={"gender": "F"})
    rendered = render_radial(series, digits=3, width=20)
    write_result(
        "E5_fig5_sectors",
        "Fig. 5 (bottom) — six segregation indexes per company sector "
        "(women across provinces)\n" + rendered,
    )
    assert len(series.labels) == 20

    by_label = {
        label: dict(zip(series.index_names, values))
        for label, values in zip(series.labels, series.values)
    }
    # Qualitative shape: women are scarcer company-wide in construction
    # than in education, so their interaction index (exposure to men) is
    # higher in construction.
    construction = by_label["construction"]["Int"]
    education = by_label["education"]["Int"]
    if construction == construction and education == education:
        assert construction > education
