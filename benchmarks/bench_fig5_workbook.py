"""E4 — Fig. 5 (top): the multidimensional segregation cube workbook.

Regenerates the Visualizer output: the cube exported as an OOXML
workbook (``scube.xlsx``) that Excel/LibreOffice open for pivot-table
exploration.  The benchmark times the export; the result file records
the workbook inventory.
"""

from __future__ import annotations

import zipfile

from repro.core.config import CubeConfig
from repro.core.pipeline import cube_workbook
from repro.core.scenarios import run_tabular
from repro.data.italy import italy_tabular_individuals

from benchmarks.conftest import RESULTS_DIR, write_result


def test_fig5_workbook_export(benchmark, italy):
    seats, schema = italy_tabular_individuals(italy)
    result = run_tabular(
        seats,
        schema,
        "sector",
        CubeConfig(min_population=20, min_minority=5,
                   max_sa_items=2, max_ca_items=1),
    )
    cube = result.cube
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "E4_scube.xlsx"

    def export():
        return cube_workbook(cube).save(out)

    path = benchmark(export)
    with zipfile.ZipFile(path) as zf:
        names = zf.namelist()
    rows = cube.to_rows()
    lines = [
        "Fig. 5 (top) — cube workbook export",
        f"cells: {len(cube)}",
        f"columns: {list(rows[0]) if rows else []}",
        f"workbook: {path.name}, {path.stat().st_size} bytes",
        f"parts: {sorted(names)}",
        "",
        "first rows of the cube sheet:",
    ]
    for row in rows[:8]:
        lines.append("  " + ", ".join(f"{k}={v}" for k, v in row.items()))
    write_result("E4_fig5_workbook", "\n".join(lines))
    assert "xl/worksheets/sheet1.xml" in names
    assert len(rows) == len(cube)
