"""E6 — Demo scenario 1: tabular data, sector = organizational unit.

"How much are women segregated in company sectors?"  The bench times the
scenario end to end and records the headline answers: the global cell
for women, the top discovered contexts, and the per-step timings.
"""

from __future__ import annotations

from repro.core.config import CubeConfig
from repro.core.scenarios import run_tabular
from repro.cube.explorer import top_contexts
from repro.data.italy import italy_tabular_individuals
from repro.report.text import render_table

from benchmarks.conftest import write_result


def _run(italy):
    seats, schema = italy_tabular_individuals(italy)
    return run_tabular(
        seats,
        schema,
        "sector",
        CubeConfig(min_population=20, min_minority=5,
                   max_sa_items=2, max_ca_items=2),
    )


def test_scenario1_tabular(benchmark, italy):
    result = benchmark.pedantic(_run, args=(italy,), rounds=3, iterations=1)
    cube = result.cube
    women = cube.cell(sa={"gender": "F"})
    lines = [
        "Scenario 1 — how much are women segregated in company sectors?",
        f"seats: {cube.metadata.n_rows}; units (sectors): {result.n_units}; "
        f"cube cells: {len(cube)}",
        "",
        "global cell (gender=F | *):",
        "  " + ", ".join(
            f"{name}={women.value(name):.3f}"
            for name in cube.metadata.index_names
        ),
        "",
        "top-10 contexts by dissimilarity (min 25 minority seats):",
    ]
    found = top_contexts(cube, "D", k=10, min_minority=25)
    lines.append(
        render_table(
            ["rank", "context", "D", "T", "M", "P"],
            [
                [f.rank, f.description, f.value, f.population, f.minority,
                 f.proportion]
                for f in found
            ],
        )
    )
    lines.append("")
    lines.append("timings: " + ", ".join(
        f"{k}={v:.3f}s" for k, v in result.timings.items()
    ))
    write_result("E6_scenario1_tabular", "\n".join(lines))
    assert women is not None and 0 <= women.value("D") <= 1
    assert found, "discovery must surface contexts"
