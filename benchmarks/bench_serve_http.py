"""E20 — HTTP serving tier under multi-reader load, single vs sharded.

PR 4-5 made serving zero-rebuild; this experiment pins the new HTTP
tier built on top: the WSGI app (hit in-process — no TCP, so the
numbers are the serving stack, not the kernel's socket path) answering
a mixed query workload from a pool of reader threads, in four
configurations:

* ``single``   — one snapshot behind a plain ``CubeService``;
* ``sharded``  — the same cube fanned across 4 hash shards behind the
  merging ``ShardedCubeService`` router;
* each ``cold`` (hot-query LRU disabled, every request recomputes) and
  ``warm`` (default LRU, workload fits, steady-state hits).

Reported per configuration: throughput (QPS) and p50/p99 latency.

Assertions pin the tier's contract: every configuration returns
**byte-identical** bodies for every query in the mix (the sharded
router and the cache are invisible to clients), and the warm-cache
``/top`` latency beats the cold one by >= 5x (the cache actually
short-circuits ranking work, not just JSON formatting).  Numbers land
in ``results/E20_http_serving.txt`` and ``results/BENCH_E20.json``.
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import ThreadPoolExecutor

from repro.cube.builder import SegregationDataCubeBuilder
from repro.report.text import render_table
from repro.serve.http import make_app, wsgi_get
from repro.store.shards import dump_sharded_snapshot
from repro.store.snapshot import dump_snapshot

from benchmarks.bench_cube_fill import FILL_ROWS, LIMITS, _fill_table
from benchmarks.conftest import write_bench_json, write_result

N_THREADS = 8
N_REQUESTS = 320
TOP_REPS = 60
MIN_WARM_TOP_SPEEDUP = 5.0

#: Deeper context itemsets than E17/E18: a denser cube makes the cold
#: ranking path representative of real serving (more cells to scan per
#: /top) while the warm path stays k-bounded.
E20_LIMITS = {**LIMITS, "max_ca_items": 3}

TOP_QUERY = "/top?index=D&k=50&min_minority=30"

#: One steady-state dashboard's worth of distinct queries: ranking,
#: slicing, point lookups, navigation and a pivot, cycled by the pool.
QUERY_MIX = [
    TOP_QUERY,
    "/top?index=G&k=20",
    "/slice?ca=r%3Dr0",
    "/slice?sa=g%3Dg1",
    "/cell?sa=g%3Dg0&ca=r%3Dr0",
    "/children?ca=r%3Dr0",
    "/parents?sa=g%3Dg0&ca=r%3Dr0",
    "/pivot?index=D&rows=g&cols=r",
]


def _run_load(app, n_requests: int = N_REQUESTS,
              n_threads: int = N_THREADS):
    """Hammer the app from a thread pool; per-request latencies + QPS."""

    def one(i: int) -> float:
        query = QUERY_MIX[i % len(QUERY_MIX)]
        start = time.perf_counter()
        status, _, _ = wsgi_get(app, query)
        elapsed = time.perf_counter() - start
        assert status == 200, f"{query} -> {status}"
        return elapsed

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        start = time.perf_counter()
        latencies = sorted(pool.map(one, range(n_requests)))
        wall = time.perf_counter() - start
    return {
        "qps": n_requests / wall,
        "p50_ms": latencies[len(latencies) // 2] * 1e3,
        "p99_ms": latencies[int(len(latencies) * 0.99) - 1] * 1e3,
        "wall_s": wall,
    }


def _bodies(app) -> "list[bytes]":
    return [wsgi_get(app, query)[2] for query in QUERY_MIX]


def _median_latency_ms(app, query: str, reps: int = TOP_REPS) -> float:
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        status, _, _ = wsgi_get(app, query)
        samples.append(time.perf_counter() - start)
        assert status == 200
    return statistics.median(samples) * 1e3


def test_http_serving_load(benchmark, tmp_path):
    """Sharded == single byte-for-byte; warm /top >= 5x cold /top."""
    table, schema = _fill_table(FILL_ROWS)
    cube = SegregationDataCubeBuilder(**E20_LIMITS).build(table, schema)
    dump_snapshot(cube, tmp_path / "single")
    dump_sharded_snapshot(cube, tmp_path / "sharded", by="hash", n_shards=4)

    apps = {
        "single cold": make_app(tmp_path / "single", cache_size=0),
        "single warm": make_app(tmp_path / "single"),
        "sharded cold": make_app(tmp_path / "sharded", cache_size=0),
        "sharded warm": make_app(tmp_path / "sharded"),
    }

    # Parity first (this also primes the warm caches and every lazy
    # structure, so "cold" below means cache-off, not first-touch).
    reference = _bodies(apps["single cold"])
    for name, app in apps.items():
        assert _bodies(app) == reference, f"{name} bodies diverged"

    results = {}

    def run():
        for name, app in apps.items():
            results[name] = _run_load(app)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    cold_top_ms = _median_latency_ms(apps["single cold"], TOP_QUERY)
    warm_top_ms = _median_latency_ms(apps["single warm"], TOP_QUERY)
    top_speedup = cold_top_ms / warm_top_ms

    cache_stats = apps["single warm"].service.cache.stats()
    assert cache_stats["hits"] > cache_stats["misses"]

    rows = [
        [name, f"{r['qps']:.0f}", f"{r['p50_ms']:.3f}", f"{r['p99_ms']:.3f}"]
        for name, r in results.items()
    ] + [
        ["single cold /top (median)", "", f"{cold_top_ms:.3f}", ""],
        ["single warm /top (median)", "", f"{warm_top_ms:.3f}", ""],
    ]
    write_result(
        "E20_http_serving",
        f"HTTP serving tier at {FILL_ROWS} rows / {len(cube)} cells, "
        f"{N_THREADS} reader threads x {N_REQUESTS} requests over "
        f"{len(QUERY_MIX)} distinct queries (bodies byte-identical across "
        f"all configurations); warm /top {top_speedup:.1f}x faster than "
        "cold\n"
        + render_table(["configuration", "QPS", "p50 (ms)", "p99 (ms)"],
                       rows),
    )
    write_bench_json("E20", {
        "rows": FILL_ROWS,
        "cells": len(cube),
        "n_threads": N_THREADS,
        "n_requests": N_REQUESTS,
        "query_mix": len(QUERY_MIX),
        **{
            name.replace(" ", "_"): {
                "qps": r["qps"], "p50_ms": r["p50_ms"], "p99_ms": r["p99_ms"],
            }
            for name, r in results.items()
        },
        "cold_top_ms": cold_top_ms,
        "warm_top_ms": warm_top_ms,
        "warm_top_speedup": top_speedup,
        "min_warm_top_speedup_required": MIN_WARM_TOP_SPEEDUP,
    })
    assert top_speedup >= MIN_WARM_TOP_SPEEDUP, (
        f"warm-cache /top only {top_speedup:.1f}x faster than cold "
        f"(need >= {MIN_WARM_TOP_SPEEDUP}x)"
    )
