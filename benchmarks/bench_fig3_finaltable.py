"""E2 — Fig. 3 (bottom-left): the ``finalTable`` produced by TableBuilder.

Regenerates the paper's example input to the SegregationDataCubeBuilder:
one row per individual and organizational unit, with the individual's SA
attributes (gender, age, birthplace), her CA attributes (residence), the
unit's aggregated context attributes (multi-valued ``sector``) and the
``unitID`` — including rows where a director sits on several boards of
the same unit and the sectors merge into a set.
"""

from __future__ import annotations

from repro.core.config import ClusteringConfig, PipelineConfig
from repro.core.pipeline import SCubePipeline
from repro.report.text import render_table

from benchmarks.conftest import write_result


def _build_final_table(italy):
    pipeline = SCubePipeline(
        PipelineConfig(clustering=ClusteringConfig(method="threshold",
                                                   min_weight=2.0))
    )
    projection = pipeline.build_graph(italy)
    clustering = pipeline.cluster(italy, projection)
    return pipeline.build_table(italy, clustering)


def test_fig3_final_table(benchmark, italy):
    table, schema = benchmark.pedantic(
        _build_final_table, args=(italy,), rounds=3, iterations=1
    )
    columns = ["gender", "age", "birthplace", "residence", "sector", "unitID"]
    multi_sector_rows = [
        row for row in table.head(2000) if len(row["sector"]) > 1
    ]
    sample = multi_sector_rows[:3] + table.head(7)
    rendered = render_table(
        columns,
        [
            [
                "{" + ",".join(sorted(map(str, row[c]))) + "}"
                if isinstance(row[c], frozenset)
                else row[c]
                for c in columns
            ]
            for row in sample
        ],
    )
    header = (
        "Fig. 3 (bottom-left) — finalTable sample "
        f"({len(table)} rows total; sector is multi-valued)"
    )
    write_result("E2_fig3_finaltable", header + "\n" + rendered)
    assert schema.spec("sector").multi_valued
    assert len(table) > 0
    # The paper's hallmark: at least one row with a merged sector set.
    assert multi_sector_rows, "expected multi-valued sector rows"
