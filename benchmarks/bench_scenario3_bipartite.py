"""E8 — Demo scenario 3: the bipartite graph of directors and companies.

"How much are women segregated in communities of connected companies?"
The full SCube pipeline runs — projection, giant-component thresholding,
TableBuilder, cube — on both case studies, and the bench records the
Italy vs Estonia cross-comparison the demo closes with.
"""

from __future__ import annotations

from repro.core.config import ClusteringConfig, CubeConfig, PipelineConfig
from repro.core.scenarios import run_bipartite
from repro.report.text import render_table

from benchmarks.conftest import write_result

CONFIG = PipelineConfig(
    clustering=ClusteringConfig(method="threshold", min_weight=2.0),
    cube=CubeConfig(min_population=20, min_minority=5,
                    max_sa_items=2, max_ca_items=1),
)


def test_scenario3_bipartite_cross_country(benchmark, italy, estonia):
    italy_result = benchmark.pedantic(
        run_bipartite, args=(italy, CONFIG), rounds=2, iterations=1
    )
    # Estonia at its most recent decade (snapshot on the membership).
    estonia_config = PipelineConfig(
        clustering=CONFIG.clustering,
        cube=CONFIG.cube,
        snapshot_date=2012,
    )
    estonia_result = run_bipartite(estonia, estonia_config)

    rows = []
    for country, result in (("Italy", italy_result),
                            ("Estonia", estonia_result)):
        cube = result.cube
        women = cube.cell(sa={"gender": "F"})
        rows.append(
            [
                country,
                cube.metadata.n_rows,
                result.n_units,
                len(cube),
                women.proportion,
                women.value("D"),
                women.value("H"),
                women.value("Iso"),
            ]
        )
    rendered = render_table(
        ["country", "rows", "units", "cells", "P(women)", "D", "H", "Iso"],
        rows,
    )
    lines = [
        "Scenario 3 — women in communities of connected companies",
        "(bipartite projection + giant-component thresholding, w >= 2)",
        "",
        rendered,
        "",
        "Italy timings: " + ", ".join(
            f"{k}={v:.3f}s" for k, v in italy_result.timings.items()
        ),
    ]
    write_result("E8_scenario3_bipartite", "\n".join(lines))
    assert italy_result.n_units > 10
    assert estonia_result.n_units > 10
    for row in rows:
        assert 0.05 < row[4] < 0.6       # plausible female share
