"""E21 — out-of-core scale-up: 10M-row CSV → streamed encode → parallel fill.

PRs 1-6 made everything *above* the transaction database fast; this
experiment pins the input side.  A finalTable CSV of ``E21_ROWS`` rows
(default 10M) is generated on disk without ever materialising the table
(:func:`~repro.data.synthetic.write_random_final_table_csv`), streamed
back in fixed-size chunks (:func:`~repro.etl.stream.stream_csv`), folded
append-only into the CSR transaction store with a spill budget
(:class:`~repro.itemsets.transactions.EncodeAccumulator`), and the cube
is filled once with the single-process columnar engine and once with the
``multiprocessing`` parallel engine at ``E21_WORKERS`` processes.

Assertions pin the scale-up contract: the two fills produce *identical*
cubes (atol=0), and the whole pipeline's peak RSS stays under
``E21_RSS_CEILING_MB`` — the out-of-core promise: peak memory is set by
chunk/window/batch sizes, not by the row count.  The >= 2.5x fill
speedup at 4 workers additionally requires >= ``E21_WORKERS`` CPUs, so
(like E17's dedicated-hardware floors) it is asserted only when the
machine can physically provide the parallelism; the measured numbers are
recorded either way.

The mining stage gets its own scaling sweep: the typed coordinate mine
is repeated with ``mine_workers=`` 1, 2 and 4 (``E21_MINE_WORKERS``),
each run asserted to reproduce the sequential lattice, with the greedy
root-partition sizes recorded alongside the timings — visibly uneven
partitions explain away a flat curve.  Like the fill floor, the >= 2x
4-worker mining speedup is asserted only when the machine has >= 4
CPUs; single-CPU runs record honest numbers without failing.

Environment knobs (CI runs a scaled-down row count):

* ``E21_ROWS`` — input rows (default 10_000_000);
* ``E21_WORKERS`` — parallel fill processes (default 4);
* ``E21_MINE_WORKERS`` — mining sweep, comma-separated (default 1,2,4);
* ``E21_RSS_CEILING_MB`` — peak-RSS ceiling (default 3000);
* ``E21_SPILL_MB`` — encode spill budget (default 256).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import CubeMetadata, SegregationCube, check_same_cells
from repro.cube.parallel import fill_parallel
from repro.data.synthetic import write_random_final_table_csv
from repro.etl.stream import stream_csv
from repro.itemsets.eclat import typed_frequent_triples
from repro.itemsets.parallel import partition_roots
from repro.itemsets.transactions import EncodeAccumulator
from repro.report.text import render_table

from benchmarks.conftest import peak_rss_mb, write_bench_json, write_result

ROWS = int(os.environ.get("E21_ROWS", "10000000"))
WORKERS = int(os.environ.get("E21_WORKERS", "4"))
MINE_WORKERS = [
    int(w) for w in os.environ.get("E21_MINE_WORKERS", "1,2,4").split(",")
]
RSS_CEILING_MB = float(os.environ.get("E21_RSS_CEILING_MB", "3000"))
SPILL_MB = int(os.environ.get("E21_SPILL_MB", "256"))
N_UNITS = 1000
#: Fractional thresholds so the mined lattice stays comparable across
#: row counts (absolute counts scale with ROWS).
LIMITS = {"min_population": 0.002, "min_minority": 0.0005,
          "max_sa_items": 2, "max_ca_items": 2}


def test_etl_scale_out_of_core(benchmark, tmp_path):
    """CSV on disk → streamed spill encode → columnar vs parallel fill."""
    csv_path = tmp_path / "final_table.csv"

    def run():
        start = time.perf_counter()
        schema = write_random_final_table_csv(
            csv_path, ROWS, n_units=N_UNITS,
            sa_attributes={"g": 2, "a": 4},
            ca_attributes={"r": 5, "s": 4},
            seed=21, skew=0.5,
        )
        write_seconds = time.perf_counter() - start

        start = time.perf_counter()
        accumulator = EncodeAccumulator(schema, spill_bytes=SPILL_MB << 20)
        for chunk in stream_csv(csv_path, schema=schema):
            accumulator.add_chunk(chunk)
        spilled = accumulator.spilled
        db = accumulator.finalize()
        encode_seconds = time.perf_counter() - start

        builder = SegregationDataCubeBuilder(**LIMITS)
        start = time.perf_counter()
        mined = builder.mine_coordinates(db)
        mine_seconds = time.perf_counter() - start

        # Mining scaling sweep: same lattice at each worker count.
        mine_scaling = []
        for mine_workers in MINE_WORKERS:
            scaled_builder = SegregationDataCubeBuilder(
                mine_workers=mine_workers, **LIMITS
            )
            start = time.perf_counter()
            scaled = scaled_builder.mine_coordinates(db)
            seconds = time.perf_counter() - start
            assert list(scaled.mixed_covers) == list(mined.mixed_covers)
            assert scaled.context_pops == mined.context_pops
            mine_scaling.append((mine_workers, seconds))

        start = time.perf_counter()
        columnar_store = builder._fill_columnar(db, mined)
        columnar_seconds = time.perf_counter() - start

        parallel_builder = SegregationDataCubeBuilder(
            engine="parallel", workers=WORKERS, **LIMITS
        )
        start = time.perf_counter()
        parallel_store = fill_parallel(parallel_builder, db, mined)
        parallel_seconds = time.perf_counter() - start
        return (schema, db, mined, columnar_store, parallel_store, spilled,
                write_seconds, encode_seconds, mine_seconds, mine_scaling,
                columnar_seconds, parallel_seconds)

    (schema, db, mined, columnar_store, parallel_store, spilled,
     write_seconds, encode_seconds, mine_seconds, mine_scaling,
     columnar_seconds, parallel_seconds) = benchmark.pedantic(
         run, rounds=1, iterations=1)

    # Identical cubes, bit for bit.
    metadata_kwargs = dict(
        index_names=[s.name for s in
                     SegregationDataCubeBuilder(**LIMITS).indexes],
        min_population=mined.minsup_pop, min_minority=mined.minsup_min,
        n_rows=len(db), n_units=db.n_units, mode="all", backend="eclat",
    )
    columnar_cube = SegregationCube(
        columnar_store, db.dictionary, CubeMetadata(**metadata_kwargs)
    )
    parallel_cube = SegregationCube(
        parallel_store, db.dictionary, CubeMetadata(**metadata_kwargs)
    )
    assert check_same_cells(columnar_cube, parallel_cube, atol=0.0) == []

    fill_speedup = columnar_seconds / parallel_seconds

    # Greedy root partitions of the typed (pass-2) mine, per sweep
    # point: the actual work split behind each measured time.
    typed_minsup = min(mined.minsup_pop, mined.minsup_min)
    root_supports = np.array([
        support for _, _, support in typed_frequent_triples(
            db, typed_minsup,
            db.dictionary.sa_ids, db.dictionary.ca_ids,
        )
    ])
    mine_t1 = dict(mine_scaling).get(1, mine_seconds)
    mine_entries = []
    for mine_workers, seconds in mine_scaling:
        mine_entries.append({
            "workers": mine_workers,
            "seconds": seconds,
            "speedup": mine_t1 / seconds if seconds else float("inf"),
            "partition_sizes": [
                len(part)
                for part in partition_roots(root_supports, mine_workers)
            ],
        })

    rss_mb = peak_rss_mb()
    workers_rss_mb = peak_rss_mb(children=True)
    csv_mb = csv_path.stat().st_size / (1 << 20)

    rows = [
        ["write CSV (streamed)", f"{write_seconds:.1f}",
         f"{csv_mb:.0f} MB on disk"],
        ["encode (chunked, spill)", f"{encode_seconds:.1f}",
         f"spilled={spilled}, budget {SPILL_MB} MB"],
        ["mine (shared)", f"{mine_seconds:.1f}",
         f"{mined.n_contexts} contexts"],
        *[
            [f"mine x{entry['workers']}", f"{entry['seconds']:.1f}",
             f"{entry['speedup']:.2f}x, partitions "
             f"{entry['partition_sizes']}"]
            for entry in mine_entries
        ],
        ["fill columnar", f"{columnar_seconds:.1f}",
         f"{len(columnar_cube)} cells"],
        [f"fill parallel x{WORKERS}", f"{parallel_seconds:.1f}",
         f"{fill_speedup:.2f}x (cpus={os.cpu_count()})"],
        ["peak RSS", f"{rss_mb:.0f} MB",
         f"ceiling {RSS_CEILING_MB:.0f} MB; workers {workers_rss_mb:.0f} MB"],
    ]
    write_result(
        "E21_etl_scale",
        f"Out-of-core build of {ROWS} rows "
        "(parallel == columnar asserted, atol=0)\n"
        + render_table(["stage", "seconds", "notes"], rows),
    )
    write_bench_json("E21", {
        "rows": ROWS,
        "n_units": N_UNITS,
        "csv_mb": csv_mb,
        "csv_write_s": write_seconds,
        "encode_s": encode_seconds,
        "encode_spilled": bool(spilled),
        "spill_budget_mb": SPILL_MB,
        "mine_s": mine_seconds,
        "mine_scaling": mine_entries,
        "n_cells": len(columnar_cube),
        "fill_columnar_s": columnar_seconds,
        "fill_parallel_s": parallel_seconds,
        "workers": WORKERS,
        "fill_speedup": fill_speedup,
        "cpu_count": os.cpu_count(),
        "rss_ceiling_mb": RSS_CEILING_MB,
        "workers_peak_rss_mb": round(workers_rss_mb, 1),
    })
    assert rss_mb < RSS_CEILING_MB, (
        f"peak RSS {rss_mb:.0f} MB exceeds the {RSS_CEILING_MB:.0f} MB "
        "ceiling — the out-of-core path is leaking scale into memory"
    )
    if (os.cpu_count() or 1) >= WORKERS:
        assert fill_speedup >= 2.5, (
            f"parallel fill only {fill_speedup:.2f}x faster at "
            f"{WORKERS} workers"
        )
    for entry in mine_entries:
        if entry["workers"] >= 4 and (os.cpu_count() or 1) >= 4:
            assert entry["speedup"] >= 2.0, (
                f"parallel mine only {entry['speedup']:.2f}x faster at "
                f"{entry['workers']} workers"
            )
