"""E10 — "Computational efficiency challenges and solutions" (paper §1/§3).

Compares the itemset-driven SegregationDataCubeBuilder against the naive
full-enumeration baseline, sweeping (a) the number of rows and (b) the
number of context attributes (i.e. the size of the coordinate lattice).

Expected shape: the two builders produce identical cubes (asserted), the
naive baseline degrades super-linearly with attribute count while the
mining-pruned builder's cost follows the number of *frequent* itemsets —
the gap widens with every added attribute.
"""

from __future__ import annotations

import time

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.cube.naive import NaiveCubeBuilder
from repro.data.synthetic import random_final_table
from repro.report.text import render_table

from benchmarks.conftest import write_result

# Three-deep context coordinates: the lattice of candidate contexts grows
# cubically in the item count, which is the regime the paper's mining
# approach targets (enumeration pays a cover scan for every candidate,
# mining only for frequent ones).  A single cheap index (D) keeps the
# holistic cell evaluation — identical in both builders — from masking
# the lattice-exploration cost under measurement.
LIMITS = dict(indexes=["D"], min_population=0.03, min_minority=0.01,
              max_sa_items=2, max_ca_items=3)


def _time_once(builder, table, schema):
    start = time.perf_counter()
    cube = builder.build(table, schema)
    return time.perf_counter() - start, cube


def _one_row(label, table, schema):
    smart_s, smart = _time_once(
        SegregationDataCubeBuilder(**LIMITS), table, schema
    )
    naive_s, naive = _time_once(NaiveCubeBuilder(**LIMITS), table, schema)
    assert check_same_cells(smart, naive) == []
    mined = smart.metadata.extra["n_mined_itemsets"]
    candidates = naive.metadata.extra["n_candidates"]
    return [label, len(smart), mined, candidates, smart_s, naive_s,
            naive_s / smart_s]


def _sweep():
    rows = []
    # (a) growing rows, fixed attributes (skewed values, as in real data)
    for n_rows in (1000, 4000, 16000):
        table, schema = random_final_table(
            n_rows, 12,
            sa_attributes={"g": 2, "a": 5},
            ca_attributes={"r": 8, "s": 10, "t": 8},
            seed=3,
            skew=0.8,
        )
        rows.append(_one_row(f"rows={n_rows}, items=33", table, schema))
    # (b) growing attribute count, fixed rows
    for n_ca, cardinality in ((2, 8), (4, 8), (6, 8), (8, 8)):
        ca = {f"c{k}": cardinality for k in range(n_ca)}
        table, schema = random_final_table(
            8000, 12, sa_attributes={"g": 2, "a": 5}, ca_attributes=ca,
            seed=4,
            skew=0.8,
        )
        n_items = 7 + n_ca * cardinality
        rows.append(_one_row(f"rows=8000, items={n_items}", table, schema))
    return rows


def test_builder_vs_naive_scalability(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rendered = render_table(
        ["workload", "cells", "frequent", "candidates",
         "itemset builder (s)", "naive (s)", "speedup"],
        rows,
    )
    write_result(
        "E10_builder_scalability",
        "Cube materialisation: itemset-driven builder vs full "
        "enumeration\n(minsup_pop=3%, minsup_minority=1%, caps 2 SA x 3 "
        "CA, index D)\n" + rendered,
    )
    # The efficiency claim: mining touches a fraction of the candidate
    # lattice, and the gap widens with the attribute count.
    attr_rows = rows[3:]
    assert attr_rows[-1][3] > 5 * attr_rows[-1][2], (
        "candidate lattice must dwarf the frequent set"
    )
    assert attr_rows[-1][6] > attr_rows[0][6], "speedup must grow with items"
    assert attr_rows[-1][6] > 1.5, "itemset builder must beat enumeration"
