"""E22 — cover-kernel graph engine vs the seed-era set/BFS baseline.

PR 8 rebuilt every ``graph/`` hot path on arrays: vectorized bipartite
projection (degree-bucketed pair enumeration; optional packed-cover
AND+popcount engine), union-find components, an O(edges)-per-step
threshold sweep, and a level-synchronous batched SToC frontier.  This
experiment runs the whole graph pipeline — projection → components →
threshold profile → SToC — once with the new engine and once with the
legacy implementations (:mod:`repro.graph.legacy`) on a power-law
membership world of ``E22_LEFT`` individuals × ``E22_RIGHT`` groups
(default 500k × 20k, the scale of the paper's national registries).

Assertions pin the optimisation contract:

* every stage's output is **identical** to the legacy one — same edge
  arrays and weights, same component/threshold/SToC labels (exact
  equality, not approximate);
* the combined new-engine pipeline is at least ``E22_MIN_SPEEDUP``
  (default 5) times faster than the combined legacy pipeline;
* the cover engine (serial and, when the machine has the CPUs,
  parallel at ``E22_WORKERS``) reproduces the grouped engine's
  projection exactly at a reduced scale.

The legacy baseline is given its adjacency sets pre-built outside the
timed region, so the measured gap understates the real one.

Environment knobs (CI runs a scaled-down world):

* ``E22_LEFT`` / ``E22_RIGHT`` — world size (default 500_000 × 20_000);
* ``E22_WORKERS`` — parallel cover fan-out (default 4);
* ``E22_MIN_SPEEDUP`` — asserted combined speedup floor (default 5).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.data.synthetic import random_bipartite_world
from repro.graph import legacy
from repro.graph.bipartite import project_onto_groups
from repro.graph.components import connected_components
from repro.graph.stoc import stoc_clustering
from repro.graph.threshold import threshold_profile
from repro.report.text import render_table

from benchmarks.conftest import peak_rss_mb, write_bench_json, write_result

N_LEFT = int(os.environ.get("E22_LEFT", "500000"))
N_RIGHT = int(os.environ.get("E22_RIGHT", "20000"))
WORKERS = int(os.environ.get("E22_WORKERS", "4"))
MIN_SPEEDUP = float(os.environ.get("E22_MIN_SPEEDUP", "5"))
MAX_LEFT_DEGREE = 50
THRESHOLDS = [2.0, 3.0, 4.0, 5.0]
TAU = 0.5


def _run_new(bipartite, attributes):
    timings = {}
    t0 = time.perf_counter()
    projection = project_onto_groups(
        bipartite, max_left_degree=MAX_LEFT_DEGREE, engine="grouped"
    )
    timings["projection"] = time.perf_counter() - t0
    graph = projection.graph

    t0 = time.perf_counter()
    components = connected_components(graph)
    timings["components"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    profile = threshold_profile(graph, THRESHOLDS)
    timings["threshold_profile"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    stoc = stoc_clustering(graph, attributes, tau=TAU, seed=7)
    timings["stoc"] = time.perf_counter() - t0
    return projection, components, profile, stoc, timings


def _run_legacy(bipartite, attributes, adjacency):
    timings = {}
    t0 = time.perf_counter()
    projection = legacy.project_onto_groups_legacy(
        bipartite, max_left_degree=MAX_LEFT_DEGREE, adjacency=adjacency
    )
    timings["projection"] = time.perf_counter() - t0
    graph = projection.graph

    t0 = time.perf_counter()
    components = legacy.connected_components_legacy(graph)
    timings["components"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    profile = legacy.threshold_profile_legacy(graph, THRESHOLDS)
    timings["threshold_profile"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    stoc = legacy.stoc_clustering_legacy(graph, attributes, tau=TAU, seed=7)
    timings["stoc"] = time.perf_counter() - t0
    return projection, components, profile, stoc, timings


def test_graph_engine_scale(benchmark):
    """Full graph pipeline, new arrays vs legacy sets, identical outputs."""
    bipartite, attributes = random_bipartite_world(N_LEFT, N_RIGHT, seed=22)
    # Legacy head start: adjacency sets built before its clock starts.
    adjacency = legacy.left_adjacency_sets(bipartite)

    def run():
        old = _run_legacy(bipartite, attributes, adjacency)
        new = _run_new(bipartite, attributes)
        return new, old

    (new, old) = benchmark.pedantic(run, rounds=1, iterations=1)
    projection, components, profile, stoc, new_t = new
    l_projection, l_components, l_profile, l_stoc, old_t = old

    # Exact output parity, stage by stage.
    u, v, w = projection.graph.edge_arrays()
    lu, lv, lw = l_projection.graph.edge_arrays()
    assert np.array_equal(u, lu) and np.array_equal(v, lv)
    assert np.array_equal(w, lw)
    assert list(projection.isolated) == list(l_projection.isolated)
    assert list(projection.skipped_hubs) == list(l_projection.skipped_hubs)
    assert np.array_equal(components.labels, l_components.labels)
    assert components.n_clusters == l_components.n_clusters
    assert profile == l_profile
    assert np.array_equal(stoc.labels, l_stoc.labels)
    assert stoc.n_clusters == l_stoc.n_clusters

    new_total = sum(new_t.values())
    old_total = sum(old_t.values())
    speedup = old_total / new_total

    # Cover-engine cross-check at a scale the packed matrix fits.
    cover_left = min(N_LEFT, 100_000)
    cover_right = min(N_RIGHT, 5_000)
    small, _ = random_bipartite_world(cover_left, cover_right, seed=22)
    t0 = time.perf_counter()
    grouped = project_onto_groups(
        small, max_left_degree=MAX_LEFT_DEGREE, engine="grouped"
    )
    grouped_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    cover = project_onto_groups(
        small, max_left_degree=MAX_LEFT_DEGREE, engine="cover",
        workers=WORKERS if (os.cpu_count() or 1) >= WORKERS else None,
    )
    cover_s = time.perf_counter() - t0
    gu, gv, gw = grouped.graph.edge_arrays()
    cu, cv, cw = cover.graph.edge_arrays()
    assert np.array_equal(gu, cu) and np.array_equal(gv, cv)
    assert np.array_equal(gw, cw)

    rss_mb = peak_rss_mb()
    rows = [
        [stage, f"{old_t[stage]:.3f}", f"{new_t[stage]:.3f}",
         f"{old_t[stage] / new_t[stage]:.1f}x"]
        for stage in ("projection", "components", "threshold_profile",
                      "stoc")
    ]
    rows.append(["TOTAL", f"{old_total:.3f}", f"{new_total:.3f}",
                 f"{speedup:.1f}x"])
    write_result(
        "E22_graph_engine",
        f"Graph pipeline on {N_LEFT}x{N_RIGHT} power-law world "
        f"({bipartite.n_edges} memberships, {projection.graph.n_edges} "
        "projected edges; outputs asserted identical)\n"
        + render_table(["stage", "legacy s", "new s", "speedup"], rows)
        + f"\ncover engine at {cover_left}x{cover_right}: "
        f"grouped {grouped_s:.3f}s, cover {cover_s:.3f}s "
        "(identical edges+weights)"
        + f"\npeak RSS: {rss_mb:.0f} MB",
    )
    write_bench_json("E22", {
        "n_left": N_LEFT,
        "n_right": N_RIGHT,
        "n_memberships": bipartite.n_edges,
        "n_projected_edges": projection.graph.n_edges,
        "n_components": components.n_clusters,
        "n_stoc_clusters": stoc.n_clusters,
        "max_left_degree": MAX_LEFT_DEGREE,
        "thresholds": THRESHOLDS,
        "tau": TAU,
        "legacy_s": {k: round(s, 4) for k, s in old_t.items()},
        "new_s": {k: round(s, 4) for k, s in new_t.items()},
        "legacy_total_s": round(old_total, 4),
        "new_total_s": round(new_total, 4),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "cover_check_left": cover_left,
        "cover_check_right": cover_right,
        "cover_grouped_s": round(grouped_s, 4),
        "cover_cover_s": round(cover_s, 4),
        "cover_workers": WORKERS,
        "cpu_count": os.cpu_count(),
    })
    assert speedup >= MIN_SPEEDUP, (
        f"graph pipeline only {speedup:.2f}x faster than the legacy "
        f"baseline (floor {MIN_SPEEDUP}x)"
    )
