"""E12 — GraphClustering ablation: components vs threshold vs SToC.

The paper ships three clustering methods because the choice shapes the
organizational units (and therefore every downstream cell).  This bench
compares them on the projected company graph: wall-clock time, number of
units, giant-unit size, modularity, mean conductance and attribute
homogeneity.

Expected shape: plain connected components collapse into a giant unit;
thresholding splits it into many business communities; SToC produces
attribute-pure clusters at moderate cost.
"""

from __future__ import annotations

import time

from repro.core.pipeline import group_attribute_table
from repro.graph.bipartite import project_onto_groups
from repro.graph.components import connected_components
from repro.graph.metrics import summarize
from repro.graph.stoc import stoc_clustering
from repro.graph.threshold import threshold_components, threshold_profile
from repro.report.text import render_table

from benchmarks.conftest import write_result


def test_clustering_methods(benchmark, italy):
    projection = project_onto_groups(italy.bipartite(), max_left_degree=50)
    graph = projection.graph
    attributes = group_attribute_table(italy)

    def run_all():
        rows = []
        for name, func in (
            ("components", lambda: connected_components(graph)),
            ("threshold(w>=2)", lambda: threshold_components(graph, 2.0)),
            ("threshold(w>=3)", lambda: threshold_components(graph, 3.0)),
            ("stoc(tau=0.4)", lambda: stoc_clustering(
                graph, attributes, tau=0.4, seed=0)),
            ("stoc(tau=0.6)", lambda: stoc_clustering(
                graph, attributes, tau=0.6, seed=0)),
        ):
            start = time.perf_counter()
            clustering = func()
            seconds = time.perf_counter() - start
            summary = summarize(graph, clustering, attributes)
            rows.append(
                [
                    name,
                    seconds,
                    summary.n_clusters,
                    summary.giant_size,
                    summary.modularity,
                    summary.mean_conductance,
                    summary.homogeneity,
                ]
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rendered = render_table(
        ["method", "seconds", "units", "giant", "modularity",
         "conductance", "homogeneity"],
        rows,
    )
    profile = threshold_profile(graph, [0.0, 1.0, 2.0, 3.0, 5.0])
    lines = [
        f"GraphClustering comparison on the projected company graph "
        f"({graph.n_nodes} nodes, {graph.n_edges} edges, "
        f"{len(projection.isolated)} isolated)",
        rendered,
        "",
        "threshold profile (threshold, units, giant size):",
        render_table(["w", "units", "giant"], profile),
    ]
    write_result("E12_clustering", "\n".join(lines))

    by_name = {r[0]: r for r in rows}
    # Thresholding splits the giant component of the components method.
    assert by_name["threshold(w>=2)"][2] >= by_name["components"][2]
    assert by_name["threshold(w>=2)"][3] <= by_name["components"][3]
    # SToC respects attributes: purer clusters than plain components.
    assert by_name["stoc(tau=0.4)"][6] <= by_name["components"][6] + 0.05
