"""E7 — Demo scenario 2: the attributed graph of directors.

"How much are women segregated in communities of connected directors?"
Nodes are directors, edges connect directors sharing a board; the
organizational units are the communities found by graph clustering.
"""

from __future__ import annotations

from repro.core.config import ClusteringConfig, CubeConfig
from repro.core.scenarios import run_director_graph
from repro.cube.explorer import top_contexts
from repro.report.text import render_table

from benchmarks.conftest import write_result


def _run(italy):
    return run_director_graph(
        italy,
        clustering_config=ClusteringConfig(method="components"),
        cube_config=CubeConfig(min_population=20, min_minority=5,
                               max_sa_items=2, max_ca_items=1),
    )


def test_scenario2_director_graph(benchmark, italy):
    result = benchmark.pedantic(_run, args=(italy,), rounds=3, iterations=1)
    cube = result.cube
    women = cube.cell(sa={"gender": "F"})
    found = top_contexts(cube, "D", k=8, min_minority=20)
    lines = [
        "Scenario 2 — women in communities of connected directors",
        f"directors: {len(result.final_table)}; communities: "
        f"{result.n_units}; cube cells: {len(cube)}",
        "",
        "global cell (gender=F | *):",
        "  " + ", ".join(
            f"{name}={women.value(name):.3f}"
            for name in cube.metadata.index_names
        ),
        "",
        "top contexts by dissimilarity:",
        render_table(
            ["rank", "context", "D", "T", "M"],
            [[f.rank, f.description, f.value, f.population, f.minority]
             for f in found],
        ),
        "",
        "timings: " + ", ".join(
            f"{k}={v:.3f}s" for k, v in result.timings.items()
        ),
    ]
    write_result("E7_scenario2_directors", "\n".join(lines))
    assert result.n_units > 10
    assert women is not None
