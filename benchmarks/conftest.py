"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures/scenarios (see
DESIGN.md §4).  Besides the pytest-benchmark timings, each bench writes
its paper-style table to ``benchmarks/results/<experiment>.txt`` so the
regenerated rows/series can be inspected and diffed after the run, and
(for experiments tracked over time) a machine-readable companion
``benchmarks/results/BENCH_<experiment>.json`` so the perf trajectory
can be plotted and regressed on without parsing text tables.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
from pathlib import Path

import pytest

from repro.data.estonia import EstoniaConfig, generate_estonia
from repro.data.italy import ItalyConfig, generate_italy

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist one experiment's regenerated table and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n[written to {path}]")
    return path


def peak_rss_mb(children: bool = False) -> float:
    """Lifetime peak resident set size of this process, in MB.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS.  With
    ``children=True``, the peak among *reaped* child processes instead
    (the parallel fill's workers).
    """
    who = resource.RUSAGE_CHILDREN if children else resource.RUSAGE_SELF
    maxrss = resource.getrusage(who).ru_maxrss
    divisor = 1 << 20 if sys.platform == "darwin" else 1 << 10
    return maxrss / divisor


def write_bench_json(experiment: str, payload: "dict[str, object]") -> Path:
    """Persist one experiment's machine-readable numbers.

    ``experiment`` is the short id (``E18``); the payload lands in
    ``results/BENCH_<experiment>.json`` with environment fields added —
    including the process's peak RSS so far, so memory regressions show
    up in the bench trajectory alongside the timings.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{experiment}.json"
    record = {
        "experiment": experiment,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "peak_rss_mb": round(peak_rss_mb(), 1),
        **payload,
    }
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"[bench json written to {path}]")
    return path


@pytest.fixture(scope="session")
def italy():
    """Benchmark-scale synthetic Italian boards dataset."""
    return generate_italy(ItalyConfig(n_companies=2500, seed=7))


@pytest.fixture(scope="session")
def italy_large():
    """Larger Italy for the scalability sweeps."""
    return generate_italy(ItalyConfig(n_companies=6000, seed=7))


@pytest.fixture(scope="session")
def estonia():
    """Benchmark-scale synthetic Estonian temporal dataset."""
    return generate_estonia(EstoniaConfig(n_companies=2500, seed=11))
