"""E15 — Ablation: closed-coordinate materialisation vs full cube.

The JIIS companion's efficiency solution (paper §2): materialise only
*closed* coordinate itemsets — non-closed coordinates select exactly the
same minority as their closure — and answer other point queries lazily
from the item covers.  This bench measures what the optimisation buys
(cells stored, build time) and what it costs (lazy point-query latency
vs a dict hit), asserting along the way that the two modes answer every
query identically.
"""

from __future__ import annotations

import time

from repro.cube.builder import SegregationDataCubeBuilder
from repro.data.italy import italy_tabular_individuals
from repro.etl.builder import tabular_final_table
from repro.report.text import render_table

from benchmarks.conftest import write_result

LIMITS = dict(min_population=20, min_minority=5, max_sa_items=2,
              max_ca_items=2)


def test_closed_vs_all_materialisation(benchmark, italy):
    seats, schema = italy_tabular_individuals(italy)
    final, final_schema = tabular_final_table(seats, schema, "sector")

    def build_both():
        rows = []
        cubes = {}
        for mode in ("all", "closed"):
            start = time.perf_counter()
            cube = SegregationDataCubeBuilder(mode=mode, **LIMITS).build(
                final, final_schema
            )
            seconds = time.perf_counter() - start
            cubes[mode] = cube
            rows.append([mode, len(cube), seconds])
        return rows, cubes

    (rows, cubes) = benchmark.pedantic(build_both, rounds=2, iterations=1)

    full, closed = cubes["all"], cubes["closed"]
    keys = list(full.keys())
    # Every all-mode cell must be answerable from the closed cube.
    mismatches = 0
    start = time.perf_counter()
    for key in keys:
        a = full.cell_by_key(key)
        b = closed.cell_by_key(key)
        if b is None or (a.population, a.minority) != (
            b.population, b.minority
        ):
            mismatches += 1
    closed_query_seconds = (time.perf_counter() - start) / len(keys)
    start = time.perf_counter()
    for key in keys:
        full.cell_by_key(key)
    full_query_seconds = (time.perf_counter() - start) / len(keys)

    lines = [
        "Closed-coordinate materialisation vs full cube",
        render_table(["mode", "cells", "build (s)"], rows),
        "",
        f"cells saved by closed mode: "
        f"{len(full) - len(closed)} of {len(full)} "
        f"({(len(full) - len(closed)) / len(full):.1%})",
        f"point-query latency: materialised {full_query_seconds * 1e6:.1f} "
        f"us vs closed-with-resolver {closed_query_seconds * 1e6:.1f} us",
        f"answer mismatches: {mismatches}",
    ]
    write_result("E15_closed_cube", "\n".join(lines))
    assert mismatches == 0
    assert len(closed) <= len(full)
