"""E9 — Temporal analysis of the Estonian dataset (paper §3 inputs).

The paper's membership pairs can be "labeled with a time interval of
validity, thus allowing for temporal analysis of segregation", with a
list of snapshot dates; the Estonian case study spans 20 years.  This
bench regenerates the yearly trend of gender segregation across sectors.

Expected shape: the generator plants a softening sector bias and a
rising female share, so dissimilarity declines over the years.
"""

from __future__ import annotations

import math

from repro.data.estonia import estonia_snapshot_table
from repro.etl.builder import tabular_final_table
from repro.indexes.binary import dissimilarity, isolation
from repro.indexes.counts import UnitCounts
from repro.report.text import bar, render_table

from benchmarks.conftest import write_result

YEARS = list(range(1997, 2015, 2))


def _yearly_rows(estonia):
    rows = []
    for year in YEARS:
        table, schema = estonia_snapshot_table(estonia, year)
        final, _ = tabular_final_table(table, schema, "sector")
        units = final.ints("unitID").data
        minority = final.categorical("gender").mask_eq("F")
        counts = UnitCounts.from_assignments(units, minority)
        d = dissimilarity(counts)
        rows.append(
            [year, int(counts.total), counts.proportion, d,
             isolation(counts), bar(d, 0.5, 20)]
        )
    return rows


def test_estonia_temporal_trend(benchmark, estonia):
    rows = benchmark.pedantic(_yearly_rows, args=(estonia,), rounds=2,
                              iterations=1)
    rendered = render_table(
        ["year", "seats", "P(women)", "D(sectors)", "Iso", ""], rows
    )
    write_result(
        "E9_estonia_temporal",
        "Estonian 20-year trend — women across sectors, yearly snapshots\n"
        + rendered,
    )
    shares = [r[2] for r in rows]
    assert shares[-1] > shares[0], "female share must drift upward"
    d_values = [r[3] for r in rows if not math.isnan(r[3])]
    first_half = sum(d_values[: len(d_values) // 2]) / (len(d_values) // 2)
    second_half = sum(d_values[len(d_values) // 2:]) / (
        len(d_values) - len(d_values) // 2
    )
    assert second_half < first_half + 0.05, (
        "segregation should not grow as the planted bias softens"
    )
