"""E3 — Fig. 3 (right): dissimilarity of women per Italian province.

The paper overlays, on a map of Italy, the dissimilarity index of women
across company sectors within each province.  This bench regenerates the
underlying series: one row per province with its region and the D value
of the cell (gender=F | province=p), units = sectors.

Expected shape: southern provinces show a different level than northern
ones (the generator plants a north/south gradient in female board
participation).
"""

from __future__ import annotations

import math

from repro.core.config import CubeConfig
from repro.core.scenarios import run_tabular
from repro.data import vocab
from repro.data.italy import italy_tabular_individuals
from repro.report.text import bar, render_table

from benchmarks.conftest import write_result


def _build(italy):
    seats, schema = italy_tabular_individuals(italy)
    return run_tabular(
        seats,
        schema,
        "sector",
        CubeConfig(indexes=["D", "Iso"], min_population=20, min_minority=5,
                   max_sa_items=1, max_ca_items=1),
    )


def test_fig3_province_map_series(benchmark, italy):
    result = benchmark.pedantic(_build, args=(italy,), rounds=3, iterations=1)
    cube = result.cube
    rows = []
    for province, region in vocab.PROVINCES:
        value = cube.value("D", sa={"gender": "F"}, ca={"province": province})
        cell = cube.cell(sa={"gender": "F"}, ca={"province": province})
        rows.append(
            [
                province,
                region,
                cell.population if cell else 0,
                value,
                bar(value, 1.0, 24),
            ]
        )
    rows.sort(key=lambda r: (r[1], r[0]))
    rendered = render_table(
        ["province", "region", "seats", "D(women)", ""], rows
    )
    write_result(
        "E3_fig3_provinces",
        "Fig. 3 (right) — dissimilarity of women across sectors, "
        "per province\n" + rendered,
    )
    defined = [r[3] for r in rows if not math.isnan(r[3])]
    assert len(defined) >= 10, "most provinces should have enough population"
