"""E14 — GraphBuilder: bipartite projection throughput and edge weights.

Times the projection of the directors×companies bipartite graph onto the
company side and records the edge-weight histogram — the signal the
threshold clustering method cuts on.

Expected shape: the weight histogram is heavy-tailed (most interlocks
share one director, a long tail shares several), and throughput scales
with the sum of per-director squared degrees.
"""

from __future__ import annotations

from repro.graph.bipartite import project_onto_groups
from repro.report.text import render_table

from benchmarks.conftest import write_result


def test_projection_throughput(benchmark, italy):
    bipartite = italy.bipartite()

    result = benchmark(
        lambda: project_onto_groups(bipartite, max_left_degree=50)
    )
    graph = result.graph
    histogram = sorted(graph.weight_histogram().items())
    lines = [
        "Bipartite projection (directors x companies -> companies)",
        f"left: {bipartite.n_left} directors, right: {bipartite.n_right} "
        f"companies, memberships: {bipartite.n_edges}",
        f"projected: {graph.n_edges} edges, {len(result.isolated)} isolated "
        f"companies, {len(result.skipped_hubs)} skipped hubs",
        "",
        "edge weight histogram (shared directors -> edge count):",
        render_table(["weight", "edges"], [[int(w), c] for w, c in histogram]),
    ]
    write_result("E14_projection", "\n".join(lines))
    assert graph.n_edges > 0
    weights = dict(histogram)
    if len(weights) > 1:
        assert weights.get(1.0, 0) >= max(
            count for w, count in weights.items() if w > 1
        ), "weight-1 edges must dominate (heavy tail)"
