"""E19 — incremental temporal fills + delta snapshots vs full rebuilds.

The temporal workload (paper §3: validity intervals + snapshot dates)
re-pays encode → mine → fill at every date when each snapshot is built
from scratch (~1.1 s at the E17/E18 scale).  This experiment pins the
payoff of the incremental engine and the delta snapshot store at 120k
rows with realistic (localized, ≤5%) membership churn between dates:

* ``full rebuild``  — filter the temporal table to the date, encode,
  mine, fill, dump a full snapshot (what a per-date pipeline pays);
* ``incremental``   — ``TemporalCubeEngine.update`` (carry unchanged
  contexts, re-mine/re-fill only the affected ones) + a delta dump
  sharing unchanged columns with the parent snapshot.

Assertions pin the contract: churn stays ≤ 5%, incremental fill + delta
dump beats the full rebuild by ≥ 5x, the delta directory shares ≥ 80%
of the full snapshot's column bytes with its parent, and the delta
cube — live *and* reopened through the parent chain — is bit-identical
(``check_same_cells`` at atol=0) to a from-scratch columnar build at
that date.  Numbers land in ``results/E19_incremental_timeline.txt``
and ``results/BENCH_E19.json``.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.cube.incremental import TemporalCubeEngine
from repro.data.synthetic import random_temporal_final_table
from repro.etl.diff import TableDiff, valid_at
from repro.itemsets.transactions import encode_table
from repro.report.text import render_table
from repro.store import CubeTimeline, dump_into_timeline, dump_snapshot

from benchmarks.bench_cube_fill import FILL_ROWS, LIMITS
from benchmarks.conftest import write_bench_json, write_result

DATES = (0, 1, 2)
MAX_CHURN = 0.05
MIN_SPEEDUP = 5.0
MIN_SHARED = 0.80


def _temporal_table():
    return random_temporal_final_table(
        n_rows=FILL_ROWS,
        n_units=60,
        dates=DATES,
        sa_attributes={"g": 2, "a": 4, "b": 3},
        ca_attributes={"r": 5, "s": 4},
        multi_valued_ca={"mv": 4},
        seed=9,
        skew=0.5,
        max_churn=MAX_CHURN,
    )


def _array_bytes(directory: Path) -> int:
    return sum(
        f.stat().st_size for f in directory.iterdir()
        if f.suffix == ".npy"
    )


def _full_rebuild(table, schema, valid):
    """What a non-incremental pipeline pays per date, end to end."""
    snapshot_rows = table.filter(valid)
    db = encode_table(snapshot_rows, schema)
    return SegregationDataCubeBuilder(**LIMITS).build_from_transactions(db)


def test_incremental_fill_and_delta_dump(benchmark, tmp_path):
    """Incremental fill + delta dump must beat the full rebuild >= 5x."""
    table, schema, starts, ends = _temporal_table()
    valids = {d: valid_at(starts, ends, d) for d in DATES}
    for old, new in zip(DATES, DATES[1:]):
        churn = TableDiff.between(starts, ends, old, new).churn()
        assert 0 < churn <= MAX_CHURN, f"churn {churn:.3f} out of budget"

    union_db = encode_table(table, schema)
    engine = TemporalCubeEngine(
        union_db, SegregationDataCubeBuilder(engine="incremental", **LIMITS)
    )
    timeline_root = tmp_path / "timeline"

    def run():
        timings = {}
        start = time.perf_counter()
        state = engine.build_at(valids[DATES[0]], DATES[0])
        dump_into_timeline(timeline_root, DATES[0], state.cube)
        timings["cold_build_dump"] = time.perf_counter() - start
        incremental = []
        for date in DATES[1:]:
            parent_cube = state.cube
            start = time.perf_counter()
            state = engine.update(state, valids[date], date)
            dump_into_timeline(
                timeline_root, date, state.cube,
                parent_date=date - 1, parent=parent_cube,
            )
            incremental.append(time.perf_counter() - start)
        timings["incremental"] = incremental
        return state, timings

    final_state, timings = benchmark.pedantic(run, rounds=1, iterations=1)

    # The baseline: a from-scratch pipeline at the last date, dumped full.
    start = time.perf_counter()
    scratch = _full_rebuild(table, schema, valids[DATES[-1]])
    full_dir = tmp_path / "full_last"
    dump_snapshot(scratch, full_dir)
    rebuild_seconds = time.perf_counter() - start

    incr_seconds = max(timings["incremental"])
    speedup = rebuild_seconds / incr_seconds

    # Byte sharing: the delta directory vs the full snapshot it avoids.
    full_bytes = _array_bytes(full_dir)
    delta_bytes = _array_bytes(timeline_root / str(DATES[-1]))
    shared_fraction = 1.0 - delta_bytes / full_bytes

    # Parity: live incremental cube and chain-reopened delta cube are
    # both bit-identical to the from-scratch build.  The scratch build
    # re-encodes the filtered table, so its item ids differ; compare
    # against a scratch build over the shared union encoding instead.
    scratch_union = SegregationDataCubeBuilder(
        **LIMITS
    ).build_from_transactions(union_db.restrict(valids[DATES[-1]]))
    assert check_same_cells(final_state.cube, scratch_union, atol=0.0) == []
    reopened = CubeTimeline(timeline_root).at(DATES[-1])
    assert check_same_cells(reopened, scratch_union, atol=0.0) == []
    assert len(scratch) == len(scratch_union)

    extra = final_state.cube.metadata.extra
    rows = [
        ["full rebuild + full dump (last date)", rebuild_seconds * 1e3, 1.0],
        ["cold build + full dump (first date)",
         timings["cold_build_dump"] * 1e3, ""],
        ["incremental update + delta dump (worst date)",
         incr_seconds * 1e3, speedup],
    ]
    write_result(
        "E19_incremental_timeline",
        f"Incremental temporal fill at {FILL_ROWS} rows, "
        f"{len(DATES)} dates, {extra['n_changed_rows']} changed rows "
        f"({extra['n_carried_contexts']} contexts carried, "
        f"{extra['n_recomputed_contexts']} recomputed); delta shares "
        f"{shared_fraction:.1%} of {full_bytes} full-snapshot bytes "
        "(bit-exact parity asserted, atol=0)\n"
        + render_table(["stage", "time (ms)", "speedup vs rebuild"], rows),
    )
    write_bench_json("E19", {
        "rows": FILL_ROWS,
        "dates": list(DATES),
        "cells_last_date": len(final_state.cube),
        "changed_rows_last_date": extra["n_changed_rows"],
        "contexts_carried": extra["n_carried_contexts"],
        "contexts_recomputed": extra["n_recomputed_contexts"],
        "rebuild_ms": rebuild_seconds * 1e3,
        "cold_build_dump_ms": timings["cold_build_dump"] * 1e3,
        "incremental_worst_ms": incr_seconds * 1e3,
        "incremental_speedup_vs_rebuild": speedup,
        "full_snapshot_bytes": full_bytes,
        "delta_snapshot_bytes": delta_bytes,
        "delta_shared_fraction": shared_fraction,
        "min_speedup_required": MIN_SPEEDUP,
        "min_shared_required": MIN_SHARED,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"incremental fill + delta dump only {speedup:.1f}x faster than "
        f"the full rebuild (need >= {MIN_SPEEDUP}x)"
    )
    assert shared_fraction >= MIN_SHARED, (
        f"delta snapshot shares only {shared_fraction:.1%} of the full "
        f"snapshot bytes (need >= {MIN_SHARED:.0%})"
    )
