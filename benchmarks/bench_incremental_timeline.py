"""E19 — incremental temporal fills + delta snapshots vs full rebuilds.

The temporal workload (paper §3: validity intervals + snapshot dates)
re-pays encode → mine → fill at every date when each snapshot is built
from scratch (~1.1 s at the E17/E18 scale).  This experiment pins the
payoff of the incremental engine and the delta snapshot store at 120k
rows with realistic (localized, ≤5%) membership churn between dates:

* ``full rebuild``  — filter the temporal table to the date, encode,
  mine, fill, dump a full snapshot (what a per-date pipeline pays);
* ``incremental``   — ``TemporalCubeEngine.update`` (carry unchanged
  contexts, re-mine/re-fill only the affected ones) + a delta dump
  sharing unchanged columns with the parent snapshot.

Assertions pin the contract: churn stays ≤ 5%, incremental fill + delta
dump beats the full rebuild by ≥ 5x, the delta directory shares ≥ 80%
of the full snapshot's column bytes with its parent, and the delta
cube — live *and* reopened through the parent chain — is bit-identical
(``check_same_cells`` at atol=0) to a from-scratch columnar build at
that date.  Numbers land in ``results/E19_incremental_timeline.txt``
and ``results/BENCH_E19.json``.

The second experiment stretches the timeline to **50 dates in closed
mode** at ~2% churn per date: every incremental update must stay
bit-identical to a from-scratch closed build (closure diff included),
the worst update must beat a per-date full closed rebuild ≥ 3x, and
the measured open-latency compaction policy must hold the last date's
chain-resolved open within 2x of the first date's while the
uncompacted chain grows unboundedly.  Its numbers merge into the same
``BENCH_E19.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path

import numpy as np

from repro.cube.builder import SegregationDataCubeBuilder
from repro.cube.cube import check_same_cells
from repro.cube.incremental import TemporalCubeEngine
from repro.data.synthetic import random_final_table, random_temporal_final_table
from repro.etl.diff import TableDiff, valid_at
from repro.itemsets.transactions import encode_table
from repro.report.text import render_table
from repro.store import (
    CompactionPolicy,
    CubeTimeline,
    compact_timeline,
    dump_into_timeline,
    dump_snapshot,
    measure_open_ms,
    snapshot_disk_bytes,
    timeline_dates,
)

from benchmarks.bench_cube_fill import FILL_ROWS, LIMITS
from benchmarks.conftest import RESULTS_DIR, write_bench_json, write_result

DATES = (0, 1, 2)
MAX_CHURN = 0.05
MIN_SPEEDUP = 5.0
MIN_SHARED = 0.80

# --- the 50-date closed-mode timeline ---------------------------------
CLOSED_ROWS = int(os.environ.get("E19_CLOSED_ROWS", 40_000))
N_CLOSED_DATES = 50
CLOSED_CHURN = 0.02
MIN_CLOSED_SPEEDUP = 3.0
MAX_OPEN_RATIO = 2.0
CLOSED_LIMITS = {"min_population": 40, "min_minority": 10,
                 "max_sa_items": 2, "max_ca_items": 2}


def _merge_bench_json(experiment: str, payload: "dict[str, object]"):
    """Merge new fields into an existing BENCH_<experiment>.json.

    Both E19 tests contribute to one JSON record; whichever runs second
    must not clobber the first's fields.
    """
    path = RESULTS_DIR / f"BENCH_{experiment}.json"
    merged: "dict[str, object]" = {}
    if path.is_file():
        merged = json.loads(path.read_text())
        for key in ("experiment", "python", "machine", "peak_rss_mb"):
            merged.pop(key, None)
    merged.update(payload)
    return write_bench_json(experiment, merged)


def _temporal_table():
    return random_temporal_final_table(
        n_rows=FILL_ROWS,
        n_units=60,
        dates=DATES,
        sa_attributes={"g": 2, "a": 4, "b": 3},
        ca_attributes={"r": 5, "s": 4},
        multi_valued_ca={"mv": 4},
        seed=9,
        skew=0.5,
        max_churn=MAX_CHURN,
    )


def _array_bytes(directory: Path) -> int:
    return sum(
        f.stat().st_size for f in directory.iterdir()
        if f.suffix == ".npy"
    )


def _full_rebuild(table, schema, valid):
    """What a non-incremental pipeline pays per date, end to end."""
    snapshot_rows = table.filter(valid)
    db = encode_table(snapshot_rows, schema)
    return SegregationDataCubeBuilder(**LIMITS).build_from_transactions(db)


def test_incremental_fill_and_delta_dump(benchmark, tmp_path):
    """Incremental fill + delta dump must beat the full rebuild >= 5x."""
    table, schema, starts, ends = _temporal_table()
    valids = {d: valid_at(starts, ends, d) for d in DATES}
    for old, new in zip(DATES, DATES[1:]):
        churn = TableDiff.between(starts, ends, old, new).churn()
        assert 0 < churn <= MAX_CHURN, f"churn {churn:.3f} out of budget"

    union_db = encode_table(table, schema)
    engine = TemporalCubeEngine(
        union_db, SegregationDataCubeBuilder(engine="incremental", **LIMITS)
    )
    timeline_root = tmp_path / "timeline"

    def run():
        timings = {}
        start = time.perf_counter()
        state = engine.build_at(valids[DATES[0]], DATES[0])
        dump_into_timeline(timeline_root, DATES[0], state.cube)
        timings["cold_build_dump"] = time.perf_counter() - start
        incremental = []
        for date in DATES[1:]:
            parent_cube = state.cube
            start = time.perf_counter()
            state = engine.update(state, valids[date], date)
            dump_into_timeline(
                timeline_root, date, state.cube,
                parent_date=date - 1, parent=parent_cube,
            )
            incremental.append(time.perf_counter() - start)
        timings["incremental"] = incremental
        return state, timings

    final_state, timings = benchmark.pedantic(run, rounds=1, iterations=1)

    # The baseline: a from-scratch pipeline at the last date, dumped full.
    start = time.perf_counter()
    scratch = _full_rebuild(table, schema, valids[DATES[-1]])
    full_dir = tmp_path / "full_last"
    dump_snapshot(scratch, full_dir)
    rebuild_seconds = time.perf_counter() - start

    incr_seconds = max(timings["incremental"])
    speedup = rebuild_seconds / incr_seconds

    # Byte sharing: the delta directory vs the full snapshot it avoids.
    full_bytes = _array_bytes(full_dir)
    delta_bytes = _array_bytes(timeline_root / str(DATES[-1]))
    shared_fraction = 1.0 - delta_bytes / full_bytes

    # Parity: live incremental cube and chain-reopened delta cube are
    # both bit-identical to the from-scratch build.  The scratch build
    # re-encodes the filtered table, so its item ids differ; compare
    # against a scratch build over the shared union encoding instead.
    scratch_union = SegregationDataCubeBuilder(
        **LIMITS
    ).build_from_transactions(union_db.restrict(valids[DATES[-1]]))
    assert check_same_cells(final_state.cube, scratch_union, atol=0.0) == []
    reopened = CubeTimeline(timeline_root).at(DATES[-1])
    assert check_same_cells(reopened, scratch_union, atol=0.0) == []
    assert len(scratch) == len(scratch_union)

    extra = final_state.cube.metadata.extra
    rows = [
        ["full rebuild + full dump (last date)", rebuild_seconds * 1e3, 1.0],
        ["cold build + full dump (first date)",
         timings["cold_build_dump"] * 1e3, ""],
        ["incremental update + delta dump (worst date)",
         incr_seconds * 1e3, speedup],
    ]
    write_result(
        "E19_incremental_timeline",
        f"Incremental temporal fill at {FILL_ROWS} rows, "
        f"{len(DATES)} dates, {extra['n_changed_rows']} changed rows "
        f"({extra['n_carried_contexts']} contexts carried, "
        f"{extra['n_recomputed_contexts']} recomputed); delta shares "
        f"{shared_fraction:.1%} of {full_bytes} full-snapshot bytes "
        "(bit-exact parity asserted, atol=0)\n"
        + render_table(["stage", "time (ms)", "speedup vs rebuild"], rows),
    )
    _merge_bench_json("E19", {
        "rows": FILL_ROWS,
        "dates": list(DATES),
        "cells_last_date": len(final_state.cube),
        "changed_rows_last_date": extra["n_changed_rows"],
        "contexts_carried": extra["n_carried_contexts"],
        "contexts_recomputed": extra["n_recomputed_contexts"],
        "rebuild_ms": rebuild_seconds * 1e3,
        "cold_build_dump_ms": timings["cold_build_dump"] * 1e3,
        "incremental_worst_ms": incr_seconds * 1e3,
        "incremental_speedup_vs_rebuild": speedup,
        "full_snapshot_bytes": full_bytes,
        "delta_snapshot_bytes": delta_bytes,
        "delta_shared_fraction": shared_fraction,
        "min_speedup_required": MIN_SPEEDUP,
        "min_shared_required": MIN_SHARED,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"incremental fill + delta dump only {speedup:.1f}x faster than "
        f"the full rebuild (need >= {MIN_SPEEDUP}x)"
    )
    assert shared_fraction >= MIN_SHARED, (
        f"delta snapshot shares only {shared_fraction:.1%} of the full "
        f"snapshot bytes (need >= {MIN_SHARED:.0%})"
    )


def _closed_masks():
    """A 50-date membership series with ~2% localized churn per date.

    Validity intervals can't model re-joining rows, so the long
    timeline synthesizes per-date boolean masks directly: at every date
    a fresh ~1% of rows sits out, so consecutive dates differ by ~2% of
    rows.  Churn is localized the way
    :func:`~repro.data.synthetic.random_temporal_final_table` localizes
    it — only rows in the ``r0 & s0`` context with *empty* multi-valued
    CA sets ever churn — so every other context is provably untouched.
    """
    table, schema = random_final_table(
        CLOSED_ROWS, 60, sa_attributes={"g": 2, "a": 4, "b": 3},
        ca_attributes={"r": 3, "s": 3}, multi_valued_ca={"mv": 4},
        seed=13, skew=0.5,
    )
    pool_mask = (
        table.categorical("r").mask_eq("r0")
        & table.categorical("s").mask_eq("s0")
    )
    pool_mask &= np.fromiter(
        (len(v) == 0 for v in table.multivalued("mv").values()),
        dtype=bool, count=CLOSED_ROWS,
    )
    pool = np.flatnonzero(pool_mask)
    rng = np.random.default_rng(17)
    out_size = CLOSED_ROWS // 100          # ~1% out per date
    assert len(pool) >= 3 * out_size
    masks = []
    for _ in range(N_CLOSED_DATES):
        mask = np.ones(CLOSED_ROWS, dtype=bool)
        mask[rng.choice(pool, size=out_size, replace=False)] = False
        masks.append(mask)
    return table, schema, masks


def test_closed_incremental_50_date_timeline(benchmark, tmp_path):
    """50 closed-mode dates: >= 3x vs rebuild, bounded open latency."""
    table, schema, masks = _closed_masks()
    churns = [
        float(np.mean(a != b)) for a, b in zip(masks, masks[1:])
    ]
    assert max(churns) <= CLOSED_CHURN + 0.005, max(churns)
    assert min(churns) > 0

    union_db = encode_table(table, schema)
    engine = TemporalCubeEngine(
        union_db,
        SegregationDataCubeBuilder(engine="incremental", mode="closed",
                                   **CLOSED_LIMITS),
    )
    timeline_root = tmp_path / "closed_timeline"

    def run():
        # Incremental timing covers what the publisher pays per date:
        # the update plus the delta dump (mirrors the 3-date test).
        state = None
        prev_cube = None
        update_seconds = []
        for date, mask in enumerate(masks):
            start = time.perf_counter()
            if state is None:
                state = engine.build_at(mask, date)
                dump_into_timeline(timeline_root, date, state.cube)
            else:
                state = engine.update(state, mask, date)
                dump_into_timeline(
                    timeline_root, date, state.cube,
                    parent_date=date - 1, parent=prev_cube,
                )
                update_seconds.append(time.perf_counter() - start)
            prev_cube = state.cube
        return state, update_seconds

    final_state, update_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Baseline: what a per-date non-incremental pipeline pays at the
    # last date — filter, encode, closed build, full dump.
    start = time.perf_counter()
    snapshot_rows = table.filter(masks[-1])
    scratch_last = SegregationDataCubeBuilder(
        mode="closed", **CLOSED_LIMITS
    ).build_from_transactions(encode_table(snapshot_rows, schema))
    full_dir = tmp_path / "full_last"
    dump_snapshot(scratch_last, full_dir)
    rebuild_seconds = time.perf_counter() - start

    worst = max(update_seconds)
    median = float(np.median(update_seconds))
    speedup_worst = rebuild_seconds / worst
    speedup_median = rebuild_seconds / median

    # Closed-mode parity, atol=0, at EVERY date: replay the masks
    # through the engine once more and scratch-build each date.
    state = None
    for date, mask in enumerate(masks):
        state = (engine.build_at(mask, date) if state is None
                 else engine.update(state, mask, date))
        scratch = SegregationDataCubeBuilder(
            mode="closed", **CLOSED_LIMITS
        ).build_from_transactions(union_db.restrict(mask))
        problems = check_same_cells(state.cube, scratch, atol=0.0)
        assert problems == [], (date, problems[:3])

    # Open-latency curve: uncompacted chain vs the measured policy.
    dates = timeline_dates(timeline_root)
    first_dir = timeline_root / str(dates[0])
    last_dir = timeline_root / str(dates[-1])
    plain_first_ms = min(measure_open_ms(first_dir) for _ in range(3))
    plain_last_ms = min(measure_open_ms(last_dir) for _ in range(3))
    plain_bytes = sum(
        snapshot_disk_bytes(timeline_root / str(d)) for d in dates
    )

    compacted_root = tmp_path / "compacted_timeline"
    shutil.copytree(timeline_root, compacted_root)
    policy = CompactionPolicy(
        max_chain=10**6,                    # latency-triggered only
        max_open_ms=1.5 * max(plain_first_ms, 1.0),
        min_byte_ratio=10.0,
    )
    start = time.perf_counter()
    compacted_dates = compact_timeline(compacted_root, policy)
    compact_seconds = time.perf_counter() - start
    comp_first_ms = min(
        measure_open_ms(compacted_root / str(dates[0])) for _ in range(3)
    )
    comp_last_ms = min(
        measure_open_ms(compacted_root / str(dates[-1])) for _ in range(3)
    )
    comp_bytes = sum(
        snapshot_disk_bytes(compacted_root / str(d)) for d in dates
    )

    # Compacted timeline still answers bit-exactly at spot-check dates.
    compacted_timeline = CubeTimeline(compacted_root)
    for date in (dates[0], dates[len(dates) // 2], dates[-1]):
        scratch = SegregationDataCubeBuilder(
            mode="closed", **CLOSED_LIMITS
        ).build_from_transactions(union_db.restrict(masks[date]))
        assert check_same_cells(
            compacted_timeline.at(date), scratch, atol=0.0
        ) == []

    # What 50 independent full snapshots would cost on disk.
    full_estimate = snapshot_disk_bytes(full_dir) * len(dates)

    extra = final_state.cube.metadata.extra
    rows = [
        ["full closed rebuild (last date)", rebuild_seconds * 1e3, 1.0],
        ["incremental closed update (median)", median * 1e3,
         speedup_median],
        ["incremental closed update (worst)", worst * 1e3, speedup_worst],
    ]
    open_rows = [
        ["uncompacted", plain_first_ms, plain_last_ms,
         plain_last_ms / plain_first_ms],
        ["compacted", comp_first_ms, comp_last_ms,
         comp_last_ms / comp_first_ms],
    ]
    write_result(
        "E19_closed_50_dates",
        f"Closed-mode incremental timeline: {CLOSED_ROWS} rows x "
        f"{N_CLOSED_DATES} dates at ~{CLOSED_CHURN:.0%} churn "
        f"(last date: {extra['n_carried_contexts']} contexts carried, "
        f"{extra['n_recomputed_contexts']} recomputed, "
        f"{extra['n_carried_cells']}+"
        f"{extra['n_carried_cells_within_affected']} cells carried; "
        "bit-exact parity vs scratch closed builds asserted at every "
        "date, atol=0)\n"
        + render_table(["stage", "time (ms)", "speedup vs rebuild"], rows)
        + "\n" + render_table(
            ["timeline", "first open (ms)", "last open (ms)", "ratio"],
            open_rows,
        )
        + f"\ncompacted {len(compacted_dates)}/{len(dates)} dates in "
        f"{compact_seconds * 1e3:.0f} ms; bytes: plain {plain_bytes} "
        f"({plain_bytes / full_estimate:.2f}x of {len(dates)} fulls), "
        f"compacted {comp_bytes} ({comp_bytes / plain_bytes:.2f}x of "
        "plain)",
    )
    _merge_bench_json("E19", {
        "closed_rows": CLOSED_ROWS,
        "closed_dates": N_CLOSED_DATES,
        "closed_churn_max": max(churns),
        "closed_cells_last_date": len(final_state.cube),
        "closed_rebuild_ms": rebuild_seconds * 1e3,
        "closed_incremental_median_ms": median * 1e3,
        "closed_incremental_worst_ms": worst * 1e3,
        "closed_speedup_median": speedup_median,
        "closed_speedup_worst": speedup_worst,
        "min_closed_speedup_required": MIN_CLOSED_SPEEDUP,
        "open_ms_uncompacted_first": plain_first_ms,
        "open_ms_uncompacted_last": plain_last_ms,
        "open_ms_compacted_first": comp_first_ms,
        "open_ms_compacted_last": comp_last_ms,
        "max_open_ratio_required": MAX_OPEN_RATIO,
        "n_dates_compacted": len(compacted_dates),
        "compact_total_ms": compact_seconds * 1e3,
        "timeline_bytes_uncompacted": plain_bytes,
        "timeline_bytes_compacted": comp_bytes,
        "bytes_vs_full_snapshots": plain_bytes / full_estimate,
    })
    assert speedup_worst >= MIN_CLOSED_SPEEDUP, (
        f"worst closed-mode incremental update only {speedup_worst:.1f}x "
        f"faster than a full closed rebuild (need >= "
        f"{MIN_CLOSED_SPEEDUP}x)"
    )
    assert comp_last_ms <= MAX_OPEN_RATIO * comp_first_ms, (
        f"compacted last-date open {comp_last_ms:.1f} ms exceeds "
        f"{MAX_OPEN_RATIO}x the first-date open {comp_first_ms:.1f} ms"
    )
    assert plain_bytes < full_estimate, (
        "delta timeline should undercut independent full snapshots"
    )
